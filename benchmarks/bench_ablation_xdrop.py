"""Ablation: the X-drop parameter vs alignment cost and quality (§4.2).

"The costs vary by read lengths and runtime parameters (for example, the
value of X for the X-drop algorithm)".  Sweeping X on real noisy overlaps
shows the cost/quality trade: larger X explores a wider band (more cells,
more simulated seconds) and recovers equal-or-better scores, with
diminishing returns past the error-bridging threshold.
"""

import numpy as np

from conftest import emit, run_once

from repro.align.batch import BatchedXDropExtender
from repro.genome import alphabet
from repro.genome.synth import ErrorModel

XS = (5, 10, 15, 25, 50, 100)


def sweep():
    rng = np.random.default_rng(3)
    em = ErrorModel(error_rate=0.15, n_rate=0.0)
    pairs = []
    for _ in range(20):
        core = alphabet.random_sequence(1500, rng)
        pairs.append((em.apply(core, rng), em.apply(core, rng)))

    rows = []
    for x in XS:
        # batched wavefront path, bit-identical to per-pair extend()
        results = BatchedXDropExtender(x_drop=x).extend_batch(pairs)
        rows.append([
            x,
            round(float(np.mean([r.score for r in results])), 1),
            round(float(np.mean([r.length_a for r in results])), 0),
            int(np.mean([r.cells for r in results])),
        ])
    return {
        "title": "Ablation: X-drop X parameter on 1.5kb true overlaps "
                 "(15% error per read)",
        "columns": ["X", "mean_score", "mean_extension", "mean_cells"],
        "rows": rows,
    }


def test_ablation_xdrop(benchmark):
    fig = run_once(benchmark, sweep)
    emit("ablation_xdrop", fig)
    rows = fig["rows"]
    scores = [r[1] for r in rows]
    cells = [r[3] for r in rows]
    # monotone cost growth, non-decreasing quality with diminishing returns
    assert all(c2 >= c1 for c1, c2 in zip(cells, cells[1:]))
    assert scores[-1] >= scores[0]
    assert scores[3] >= 0.95 * scores[-1]  # X=25 already near-optimal
