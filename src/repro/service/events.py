"""Per-job progress events: the bus between a running engine and clients.

Two pieces:

* :class:`JobEventLog` — an append-only, capped, thread-safe event log
  with blocking iteration.  Every job owns one; the HTTP layer's SSE
  endpoint replays it from any sequence number and then tails it live.
* :class:`ProgressTracer` — a :class:`repro.obs.Tracer` subclass the queue
  attaches to every executed run.  It records events exactly as the plain
  tracer does (so run-exit conservation checks still re-sum the stream),
  *and* forwards a service-facing digest into the job's event log: phase
  starts, fault injections, churn membership/migration events, and
  periodic percent-complete estimates against the planner's predicted
  wall when one is available.  It is also the cancellation hook: every
  record call checks the job's cancel flag and raises the typed
  :class:`~repro.errors.JobCancelledError`, which aborts the engine
  mid-run while its ``with``-held executors tear down cleanly.

Forwarding never changes results: the tracer only observes, and a job
run with a ``ProgressTracer`` attached produces a
:meth:`~repro.engines.report.RunResult.signature` bit-identical to an
untraced run (pinned by ``tests/test_service_http.py`` against the
golden-signature suite).
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.errors import JobCancelledError
from repro.obs.tracer import Tracer

__all__ = ["JobEventLog", "ProgressTracer",
           "DEFAULT_EVENT_CAP", "PROGRESS_EVERY"]

#: events retained per job before non-essential kinds are dropped (state
#: and terminal events always land; one ``truncated`` marker records drops)
DEFAULT_EVENT_CAP = 10_000

#: a ``progress`` event is emitted every this many phase events
PROGRESS_EVERY = 64

#: instants forwarded into the job log, mapped to their service event kind
_INSTANT_KINDS = {
    "fault_inject": "fault",
    "rank_join": "churn",
    "rank_evict": "churn",
    "migrate": "churn",
}

#: event kinds that bypass the cap — a client must always see these
_ALWAYS_KEPT = ("state", "done", "truncated")


class JobEventLog:
    """Append-only capped event list with blocking tail iteration.

    Events are dicts carrying at least ``seq`` (monotonic per log) and
    ``event`` (the kind).  ``close()`` marks the log terminal: tailing
    iterators drain what remains and stop instead of blocking forever.
    """

    def __init__(self, cap: int = DEFAULT_EVENT_CAP):
        self._events: list[dict] = []
        self._cond = threading.Condition()
        self._seq = 0
        self._cap = cap
        self.closed = False
        self.dropped = 0

    def append(self, kind: str, /, **payload: Any) -> None:
        with self._cond:
            if self.closed:
                return
            if len(self._events) >= self._cap and kind not in _ALWAYS_KEPT:
                if self.dropped == 0:
                    self._events.append(
                        {"seq": self._seq, "event": "truncated",
                         "cap": self._cap}
                    )
                    self._seq += 1
                self.dropped += 1
                return
            # seq/event always win over payload keys of the same name
            self._events.append({**payload, "seq": self._seq, "event": kind})
            self._seq += 1
            self._cond.notify_all()

    def close(self) -> None:
        """Mark the log terminal; tailing iterators finish draining."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def snapshot(self, since: int = 0) -> list[dict]:
        """Copy of the events with ``seq >= since`` recorded so far."""
        with self._cond:
            return [e for e in self._events if e["seq"] >= since]

    def stream(self, since: int = 0, poll: float = 10.0) -> Iterator[dict]:
        """Yield events from ``since`` onward, blocking for new ones.

        Ends when the log is closed and fully drained.  ``poll`` bounds
        each wait so a consumer thread can notice its client went away
        even if the job stalls.
        """
        cursor = since
        while True:
            with self._cond:
                batch = [e for e in self._events if e["seq"] >= cursor]
                if not batch:
                    if self.closed:
                        return
                    self._cond.wait(timeout=poll)
                    batch = [e for e in self._events if e["seq"] >= cursor]
            for event in batch:
                cursor = event["seq"] + 1
                yield event


class ProgressTracer(Tracer):
    """Tracer sink that tails a run into its job's event log.

    ``predicted_wall`` (planner prediction, when the engine has a cost
    hook) turns the periodic ``progress`` events into percent-complete
    estimates; without it they carry the simulated clock only.
    ``phase_stride`` forwards every Nth phase event (1 = all) — recording
    for conservation is never strided, only the service digest is.
    """

    def __init__(self, job, predicted_wall: float | None = None,
                 phase_stride: int = 1):
        super().__init__(enabled=True)
        self.job = job
        self.predicted_wall = predicted_wall
        self.phase_stride = max(1, int(phase_stride))
        self._phases_seen = 0
        self._sim_time = 0.0

    def _check_cancel(self) -> None:
        if self.job.cancel_requested:
            raise JobCancelledError(
                f"job {self.job.id} cancelled while running "
                f"(after {self._phases_seen} phase events, "
                f"sim t={self._sim_time:.6g}s)"
            )

    def _progress(self) -> None:
        payload: dict[str, Any] = {"sim_time": self._sim_time,
                                   "phases": self._phases_seen}
        if self.predicted_wall and self.predicted_wall > 0:
            payload["percent"] = min(
                99.0, 100.0 * self._sim_time / self.predicted_wall
            )
        self.job.events.append("progress", **payload)

    def phase(self, rank: int, category: str, start: float,
              duration: float, name: str = "") -> None:
        self._check_cancel()
        super().phase(rank, category, start, duration, name=name)
        self._phases_seen += 1
        self._sim_time = max(self._sim_time, start + duration)
        if (self._phases_seen - 1) % self.phase_stride == 0:
            self.job.events.append(
                "phase", rank=int(rank), category=category,
                name=name or category, sim_start=float(start),
                sim_end=float(start + duration),
            )
        if self._phases_seen % PROGRESS_EVERY == 0:
            self._progress()

    def instant(self, rank: int, name: str, time: float, **args: Any) -> None:
        self._check_cancel()
        super().instant(rank, name, time, **args)
        kind = _INSTANT_KINDS.get(name)
        if kind is not None:
            # engine instants may carry args named like our own fields
            # (fault_inject sends kind="kill"); ours win, theirs keep
            # their value under an "arg_" prefix
            payload = {"name": name, "rank": int(rank),
                       "sim_time": float(time)}
            for key, value in args.items():
                slot = f"arg_{key}" if key in payload else key
                payload[slot] = _plain(value)
            self.job.events.append(kind, **payload)

    def counter(self, rank: int, name: str, time: float,
                value: float) -> None:
        self._check_cancel()
        super().counter(rank, name, time, value)


def _plain(value: Any) -> Any:
    """JSON-friendly rendering of one instant-event argument."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
