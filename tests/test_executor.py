"""Compute-backend tests: determinism, chunking invariance, clean shutdown.

The contract under test (docs/PARALLEL.md): the ``process`` backend is
bit-identical to ``serial`` for *any* worker count and chunk size, and a
run — finished or fault-aborted — leaves behind no worker processes and no
shared-memory segments.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.align.seedextend import Alignment, SeedExtendAligner
from repro.core.api import get_workload, run_alignment
from repro.engines.base import EngineConfig
from repro.errors import ConfigurationError, RankFailureError, WorkerCrashError
from repro.faults import parse_fault_spec
from repro.machine.config import cori_knl
from repro.runtime.executor import (
    AUTO_MIN_PROBE_TASKS,
    AutoExecutor,
    ProcessExecutor,
    SerialExecutor,
    active_shm_segments,
    make_task_executor,
)

N_TASK_CAP = 120  # plenty of chunk boundaries, still fast per example


@pytest.fixture(scope="module")
def workload():
    return get_workload("micro", seed=11)


@pytest.fixture(scope="module")
def serial(workload):
    return SerialExecutor(workload, SeedExtendAligner())


@pytest.fixture(scope="module")
def pools(workload):
    """One persistent pool per worker count, shared across examples."""
    executors = {
        w: ProcessExecutor(workload, SeedExtendAligner(), workers=w)
        for w in (1, 2, 4)
    }
    yield executors
    for ex in executors.values():
        ex.close()


def _fields(al: Alignment) -> dict:
    return dataclasses.asdict(al)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    workers=st.sampled_from([1, 2, 4]),
    chunk_tasks=st.integers(min_value=0, max_value=17),
    indices=st.lists(st.integers(min_value=0, max_value=N_TASK_CAP - 1),
                     min_size=0, max_size=48),
)
def test_process_backend_matches_serial_fieldwise(
        serial, pools, workers, chunk_tasks, indices):
    """Any (worker count, chunk size, task subset) is bit-identical."""
    ex = pools[workers]
    ex.chunk_tasks = chunk_tasks  # plain attribute read by _chunk_size
    got = ex.align_tasks(indices)
    want = serial.align_tasks(indices)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert _fields(g) == _fields(w)


def test_empty_batch(serial, pools, workload):
    assert serial.align_tasks([]) == []
    assert pools[2].align_tasks([]) == []
    # the serial path must short-circuit *before* touching the aligner:
    # model-kernel runs hold aligner=None and an empty group would
    # otherwise explode on align_batch (asymmetric with process)
    assert SerialExecutor(workload, None).align_tasks([]) == []
    assert serial.align_tasks_rows([]).shape == (0, 7)
    assert pools[2].align_tasks_rows([]).shape == (0, 7)


def test_chunk_size_policy(workload):
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=4)
    try:
        # 0 = split evenly across workers (ceiling division)
        assert ex._chunk_size(10) == 3
        assert ex._chunk_size(4) == 1
        # explicit chunk_tasks wins
        ex.chunk_tasks = 5
        assert ex._chunk_size(1000) == 5
    finally:
        ex.close()


def test_stats_shape(workload):
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    try:
        ex.align_tasks(range(9))
        s = ex.stats()
        assert s["backend"] == "process"
        assert s["batches"] == 1
        assert s["tasks"] == 9
        assert s["chunks"] >= 1
        assert s["failed_batches"] == 0
        # the honest three-way split: submit-only, wait-for-workers,
        # rehydration-only (merge_s no longer hides the wait)
        for key in ("dispatch_s", "wait_s", "merge_s"):
            assert s[key] >= 0
        total_chunks = sum(w["chunks"] for w in s["per_worker"].values())
        assert total_chunks == s["chunks"]
    finally:
        ex.close()


def test_rows_api_matches_objects(serial, pools):
    idx = list(range(24))
    rows = pools[2].align_tasks_rows(idx)
    want = serial.align_tasks(idx)
    assert rows.shape == (24, 7)
    for r, al in zip(rows, want):
        assert list(r) == [al.score, al.begin_a, al.end_a, al.begin_b,
                           al.end_b, al.cells, int(al.terminated_early)]


def test_output_array_grows_and_is_reused(workload, serial):
    """Batches larger than the current capacity reallocate transparently."""
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    try:
        small = ex.align_tasks(range(6))
        cap_after_small = ex._out.capacity
        big = ex.align_tasks(range(96))
        assert ex._out.capacity >= 96 > cap_after_small
        # and shrinking back reuses the big array (no reallocation)
        name = ex._out.name
        again = ex.align_tasks(range(6))
        assert ex._out.name == name
        for got, want in zip(small + big + again,
                             serial.align_tasks(range(6))
                             + serial.align_tasks(range(96))
                             + serial.align_tasks(range(6))):
            assert _fields(got) == _fields(want)
    finally:
        ex.close()


def test_model_kernel_always_gets_serial(workload):
    """No aligner -> no kernel batches -> a pool would be pure overhead."""
    with pytest.warns(RuntimeWarning, match="running serial"):
        ex = make_task_executor(workload, None, backend="process", workers=4)
    assert isinstance(ex, SerialExecutor)
    # loud, not silent: the downgrade reaches the exec_* metrics
    assert ex.stats()["backend_downgraded"] == 1.0
    assert ex.downgraded_from == "process"


def test_model_kernel_auto_downgrades_quietly(workload):
    """auto choosing serial for a kernel-free run is its job, not a warning."""
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        ex = make_task_executor(workload, None, backend="auto", workers=4)
    assert isinstance(ex, SerialExecutor)
    assert "backend_downgraded" not in ex.stats()


def test_unknown_backend_rejected(workload):
    with pytest.raises(ConfigurationError):
        make_task_executor(workload, SeedExtendAligner(), backend="threads")


# -- shutdown hygiene --------------------------------------------------------


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def test_close_reaps_workers_and_segments(workload):
    baseline = active_shm_segments()  # other fixtures may hold segments
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    ex.align_tasks(range(6))
    assert active_shm_segments() - baseline  # store is live while running
    pids = list(ex._pool._processes)
    assert pids and all(_alive(p) for p in pids)
    ex.close()
    ex.close()  # idempotent
    assert active_shm_segments() == baseline
    assert not any(_alive(p) for p in pids)


def test_resource_tracker_claims_balance(workload, monkeypatch):
    """Every parent-side tracker registration is released exactly once.

    Guards the fork-context subtlety: workers share the parent's resource
    tracker, so an extra worker-side unregister (or a missing parent-side
    unlink) would unbalance the tracker's cache and spew KeyError noise at
    interpreter exit.
    """
    from multiprocessing import resource_tracker

    events: list[tuple[str, str]] = []
    real_register = resource_tracker.register
    real_unregister = resource_tracker.unregister

    def register(name, rtype):
        if rtype == "shared_memory":
            events.append(("+", name))
        return real_register(name, rtype)

    def unregister(name, rtype):
        if rtype == "shared_memory":
            events.append(("-", name))
        return real_unregister(name, rtype)

    monkeypatch.setattr(resource_tracker, "register", register)
    monkeypatch.setattr(resource_tracker, "unregister", unregister)

    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    ex.align_tasks(range(5))
    ex.close()

    registered = [n for op, n in events if op == "+"]
    unregistered = [n for op, n in events if op == "-"]
    assert sorted(registered) == sorted(unregistered)
    assert len(set(registered)) == len(registered)


def test_fault_abort_leaves_no_leaks(workload):
    """A rank death mid-run still tears the pool + segments down."""
    baseline = active_shm_segments()
    machine = cori_knl(1, app_cores_per_node=4)
    cfg = EngineConfig(backend="process", workers=2)
    with pytest.raises(RankFailureError):
        run_alignment(workload, 1, "bsp-micro", config=cfg, machine=machine,
                      kernel="real", fault_plan=parse_fault_spec("kill=r1@0"))
    assert active_shm_segments() == baseline


# -- failure paths -----------------------------------------------------------


def test_worker_exception_cancels_and_keeps_counters_consistent(workload):
    """A mid-batch worker exception must not half-update the stats."""
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2,
                         chunk_tasks=2)
    try:
        with pytest.raises(IndexError):
            ex.align_tasks([0, 1, 10**9, 3, 4, 5])
        s = ex.stats()
        assert s["failed_batches"] == 1
        assert s["batches"] == 0 and s["tasks"] == 0 and s["chunks"] == 0
        assert s["per_worker"] == {}
        # the pool survives a task-level exception and stays usable
        assert len(ex.align_tasks(range(6))) == 6
        assert ex.stats()["batches"] == 1
    finally:
        ex.close()


def test_worker_crash_raises_typed_error_no_leak(workload):
    """SIGKILLed workers surface as WorkerCrashError, not a cf internal."""
    import signal

    baseline = active_shm_segments()
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    try:
        ex.align_tasks(range(8))  # spin the workers up
        for pid in list(ex._pool._processes):
            os.kill(pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashError, match="worker process died"):
            ex.align_tasks(range(8))
        assert ex.stats()["failed_batches"] == 1
    finally:
        ex.close()
    assert active_shm_segments() == baseline


# -- the auto chooser --------------------------------------------------------


def test_auto_single_core_commits_serial_without_a_pool(workload, serial,
                                                        monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    baseline = active_shm_segments()
    with AutoExecutor(workload, SeedExtendAligner()) as ex:
        assert ex.chosen == "serial"
        assert ex.stats()["auto_reason"] == "single_core"
        got = ex.align_tasks(range(40))
        want = serial.align_tasks(range(40))
        for g, w in zip(got, want):
            assert _fields(g) == _fields(w)
        # no pool, no shared memory — the cheap path really is cheap
        assert ex._process is None
        assert active_shm_segments() == baseline


def test_auto_tiny_batches_never_probe_the_pool(workload, serial,
                                                monkeypatch):
    """Sub-probe-size batches (async callback groups) stay inline forever."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    baseline = active_shm_segments()
    with AutoExecutor(workload, SeedExtendAligner()) as ex:
        for _ in range(10):
            got = ex.align_tasks(range(AUTO_MIN_PROBE_TASKS - 1))
        assert ex.chosen == "probing"
        assert ex._process is None
        assert active_shm_segments() == baseline
        want = serial.align_tasks(range(AUTO_MIN_PROBE_TASKS - 1))
        for g, w in zip(got, want):
            assert _fields(g) == _fields(w)


def test_auto_probes_then_commits(workload, serial, monkeypatch):
    """Big batches advance serial probe -> pool probe -> a committed choice."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    baseline = active_shm_segments()
    with AutoExecutor(workload, SeedExtendAligner(), workers=2) as ex:
        want = serial.align_tasks(range(80))
        for _ in range(5):
            got = ex.align_tasks(range(80))
            for g, w in zip(got, want):
                assert _fields(g) == _fields(w)
        assert ex.chosen in ("serial", "process")
        s = ex.stats()
        assert s["auto_probe_serial_pps"] > 0
        assert s["auto_probe_process_pps"] > 0
        assert s["auto_reason"] in ("measured_pool_faster",
                                    "pool_cannot_pay")
        # the measurements and the commitment must agree
        chose_pool = AutoExecutor.decide(s["auto_probe_serial_pps"],
                                         s["auto_probe_process_pps"])
        assert (ex.chosen == "process") == chose_pool
    assert active_shm_segments() == baseline


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="pool cannot win without spare cores")
def test_auto_picks_process_on_kernel_heavy_workload(workload):
    """With real spare cores, sustained big batches should engage the pool."""
    with AutoExecutor(workload, SeedExtendAligner()) as ex:
        for _ in range(4):
            ex.align_tasks(range(N_TASK_CAP))
        s = ex.stats()
        # the decision must match the measurements on this machine; on a
        # quiet >=2-core box that means the pool (kernel work dominates
        # the ~1 ms/chunk IPC at this batch size)
        assert (ex.chosen == "process") == AutoExecutor.decide(
            s["auto_probe_serial_pps"], s["auto_probe_process_pps"])


def test_auto_decision_rule():
    assert AutoExecutor.decide(100.0, 200.0)
    assert not AutoExecutor.decide(100.0, 100.0)  # hysteresis: tie -> serial
    assert not AutoExecutor.decide(100.0, 104.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(indices=st.lists(st.integers(min_value=0, max_value=N_TASK_CAP - 1),
                        min_size=0, max_size=12))
def test_auto_backend_deterministic_and_matches_serial(workload, serial,
                                                       indices):
    """backend=auto is bit-identical to serial for any task subset, twice."""
    with AutoExecutor(workload, SeedExtendAligner()) as ex:
        first = ex.align_tasks(indices)
        second = ex.align_tasks(indices)
    want = serial.align_tasks(indices)
    assert len(first) == len(second) == len(want)
    for f, s, w in zip(first, second, want):
        assert _fields(f) == _fields(s) == _fields(w)


def test_engine_run_with_auto_backend_matches_serial(workload):
    machine = cori_knl(1, app_cores_per_node=4)
    base = run_alignment(workload, 1, "bsp-micro", config=EngineConfig(),
                         machine=machine, kernel="real")
    auto = run_alignment(workload, 1, "bsp-micro",
                         config=EngineConfig(backend="auto", workers=2),
                         machine=machine, kernel="real")
    assert base.wall_time == auto.wall_time
    assert len(base.alignments) == len(auto.alignments)
    for a, b in zip(base.alignments, auto.alignments):
        assert _fields(a) == _fields(b)


def test_downgrade_metric_surfaces_in_engine_counters(workload):
    """--backend process --kernel model is loud: warning + metric."""
    from repro.obs import MetricsRegistry

    machine = cori_knl(1, app_cores_per_node=4)
    metrics = MetricsRegistry(machine.total_ranks)
    with pytest.warns(RuntimeWarning, match="running serial"):
        run_alignment(workload, 1, "bsp-micro",
                      config=EngineConfig(backend="process", workers=2),
                      machine=machine, kernel="model", metrics=metrics)
    assert metrics.get("exec_backend_downgraded").sum() == 1.0


def test_engine_results_identical_across_backends(workload):
    """Whole-run lockdown at the engine level (field-by-field)."""
    baseline = active_shm_segments()
    machine = cori_knl(1, app_cores_per_node=4)
    base = run_alignment(workload, 1, "async-micro", config=EngineConfig(),
                         machine=machine, kernel="real")
    par = run_alignment(
        workload, 1, "async-micro",
        config=EngineConfig(backend="process", workers=4, chunk_tasks=3),
        machine=machine, kernel="real")
    assert base.wall_time == par.wall_time
    assert np.array_equal(base.memory_high_water, par.memory_high_water)
    assert len(base.alignments) == len(par.alignments)
    for a, b in zip(base.alignments, par.alignments):
        assert _fields(a) == _fields(b)
    assert active_shm_segments() == baseline


# -- per-shard shared stores (sharded workloads; docs/PARALLEL.md) -----------


def test_per_batch_store_matches_serial(workload, serial):
    """Sharded workloads flip the pool into per-batch SharedShardStore
    mode: compact per-batch read stores with remapped local ids must be
    invisible in the results."""
    from repro.pipeline.sharded import ShardedWorkload

    baseline = active_shm_segments()
    sw = ShardedWorkload.from_workload(workload, shard_tasks=97,
                                       max_resident_shards=2)
    rng = np.random.default_rng(4)
    idx = rng.choice(workload.n_tasks, size=N_TASK_CAP, replace=False)
    try:
        with ProcessExecutor(sw, SeedExtendAligner(), workers=2,
                             chunk_tasks=13) as ex:
            assert ex._per_batch and ex._store is None
            got = ex.align_tasks(idx)
            want = serial.align_tasks(idx)
            assert len(got) == len(want)
            for a, b in zip(got, want):
                assert _fields(a) == _fields(b)
            rows = ex.align_tasks_rows(idx)
            assert np.array_equal(rows, _pack(want))
            stats = ex.stats()
            assert stats["batch_stores"] == 2  # one per batch dispatched
    finally:
        sw.close()
    assert active_shm_segments() == baseline


def test_shared_shard_store_compacts_reads(workload):
    """The per-batch store publishes only the batch's reads."""
    from repro.runtime.executor import SharedShardStore

    idx = np.array([0, 1, 2], dtype=np.int64)
    store = SharedShardStore(workload, idx)
    try:
        arrays = store.spec["arrays"]
        touched = np.unique(np.concatenate([
            workload.tasks.read_a[idx], workload.tasks.read_b[idx]]))
        assert arrays["offsets"][1][0] == touched.size + 1
        # local ids index the compact buffer, not the global read set
        _, shape, _ = arrays["read_a"]
        assert shape[0] == idx.size
    finally:
        store.close()
    assert store.spec["arrays"]["buffer"][0] not in active_shm_segments()


def _pack(alignments):
    from repro.runtime.executor import _pack_rows

    return _pack_rows(alignments)
