"""Read containers.

:class:`ReadSet` is the library's core sequence container: a
structure-of-arrays (one flat uint8 buffer + CSR offsets) holding all reads
of a partition.  This mirrors how the paper's BSP code stores reads in flat
arrays for locality (§4.6) and keeps numpy operations over all reads
vectorizable.  :class:`Read` is a lightweight per-read view for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SequenceError
from repro.genome import alphabet
from repro.utils.arrays import counts_to_offsets

__all__ = ["Read", "ReadSet"]


@dataclass(frozen=True)
class Read:
    """A single long read: an id, its code array, and provenance metadata.

    ``origin`` / ``origin_end`` record where in the reference genome the read
    was sampled from (synthetic data only; -1 when unknown) — used by tests
    and by quality evaluation of overlaps, never by the aligners themselves.
    """

    id: int
    codes: np.ndarray
    name: str = ""
    origin: int = -1
    origin_end: int = -1
    strand: int = 1

    def __len__(self) -> int:
        return int(self.codes.size)

    def __str__(self) -> str:
        return alphabet.decode(self.codes)


class ReadSet:
    """An immutable set of reads in structure-of-arrays layout.

    Attributes
    ----------
    buffer : uint8 array, all read codes concatenated
    offsets : int64 array of length ``len(self)+1``; read ``i`` occupies
        ``buffer[offsets[i]:offsets[i+1]]``
    ids : global read ids (int64); a partition of a distributed read set
        keeps the global ids of its local reads
    names, origins, origin_ends, strands : optional parallel metadata arrays
    """

    def __init__(
        self,
        buffer: np.ndarray,
        offsets: np.ndarray,
        ids: np.ndarray | None = None,
        names: Sequence[str] | None = None,
        origins: np.ndarray | None = None,
        origin_ends: np.ndarray | None = None,
        strands: np.ndarray | None = None,
    ):
        self.buffer = np.ascontiguousarray(buffer, dtype=np.uint8)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise SequenceError("offsets must be a 1-D array with a leading 0")
        if self.offsets[0] != 0 or self.offsets[-1] != self.buffer.size:
            raise SequenceError("offsets must start at 0 and end at buffer size")
        if np.any(np.diff(self.offsets) < 0):
            raise SequenceError("offsets must be nondecreasing")
        n = self.offsets.size - 1
        self.ids = (
            np.arange(n, dtype=np.int64)
            if ids is None
            else np.ascontiguousarray(ids, dtype=np.int64)
        )
        if self.ids.size != n:
            raise SequenceError("ids length must match read count")
        self.names = list(names) if names is not None else None
        self.origins = None if origins is None else np.asarray(origins, dtype=np.int64)
        self.origin_ends = (
            None if origin_ends is None else np.asarray(origin_ends, dtype=np.int64)
        )
        self.strands = None if strands is None else np.asarray(strands, dtype=np.int8)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_codes(cls, code_arrays: Iterable[np.ndarray], **kw) -> "ReadSet":
        """Build from an iterable of per-read uint8 code arrays."""
        arrays = [np.asarray(a, dtype=np.uint8) for a in code_arrays]
        lengths = np.array([a.size for a in arrays], dtype=np.int64)
        offsets = counts_to_offsets(lengths)
        buffer = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.uint8)
        )
        return cls(buffer, offsets, **kw)

    @classmethod
    def from_strings(cls, seqs: Iterable[str], **kw) -> "ReadSet":
        """Build from an iterable of ACGTN strings."""
        return cls.from_codes([alphabet.encode(s) for s in seqs], **kw)

    @classmethod
    def from_reads(cls, reads: Iterable[Read]) -> "ReadSet":
        reads = list(reads)
        rs = cls.from_codes(
            [r.codes for r in reads],
            ids=np.array([r.id for r in reads], dtype=np.int64),
            names=[r.name for r in reads],
            origins=np.array([r.origin for r in reads], dtype=np.int64),
            origin_ends=np.array([r.origin_end for r in reads], dtype=np.int64),
            strands=np.array([r.strand for r in reads], dtype=np.int8),
        )
        return rs

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return self.offsets.size - 1

    @property
    def lengths(self) -> np.ndarray:
        """Per-read lengths in bases (== bytes, one byte per base)."""
        return np.diff(self.offsets)

    @property
    def total_bases(self) -> int:
        return int(self.buffer.size)

    def codes(self, i: int) -> np.ndarray:
        """Zero-copy view of read ``i``'s code array."""
        return self.buffer[self.offsets[i]: self.offsets[i + 1]]

    def read(self, i: int) -> Read:
        """Materialize read ``i`` with metadata."""
        return Read(
            id=int(self.ids[i]),
            codes=self.codes(i),
            name=self.names[i] if self.names else "",
            origin=int(self.origins[i]) if self.origins is not None else -1,
            origin_end=int(self.origin_ends[i]) if self.origin_ends is not None else -1,
            strand=int(self.strands[i]) if self.strands is not None else 1,
        )

    def __iter__(self) -> Iterator[Read]:
        for i in range(len(self)):
            yield self.read(i)

    def index_of(self, read_id: int) -> int:
        """Local index of a global read id (O(n) first call, cached map)."""
        try:
            lookup = self._id_lookup  # type: ignore[has-type]
        except AttributeError:
            lookup = {int(g): i for i, g in enumerate(self.ids)}
            self._id_lookup = lookup
        try:
            return lookup[int(read_id)]
        except KeyError:
            raise SequenceError(f"read id {read_id} not in this ReadSet") from None

    def subset(self, indices: np.ndarray) -> "ReadSet":
        """New ReadSet with the given local indices (copies the data)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ReadSet.from_codes(
            [self.codes(int(i)) for i in indices],
            ids=self.ids[indices],
            names=[self.names[int(i)] for i in indices] if self.names else None,
            origins=self.origins[indices] if self.origins is not None else None,
            origin_ends=(
                self.origin_ends[indices] if self.origin_ends is not None else None
            ),
            strands=self.strands[indices] if self.strands is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadSet(n={len(self)}, bases={self.total_bases})"
