"""Alignment scoring schemes.

Weights assigned to matches (reward) and to substitutions / insertions /
deletions (penalties); the sum over an alignment is its score and aligners
seek the best-scoring alignment (paper §2).  Linear gap costs, as used by
the X-drop extension in BELLA/SeqAn's ``extendSeed``.

``N`` (code 4) never matches anything, including another ``N`` — a
low-confidence call carries no evidence of identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import AlignmentError

__all__ = ["ScoringScheme", "DEFAULT_SCORING"]


@dataclass(frozen=True)
class ScoringScheme:
    """Match reward and mismatch/gap penalties (penalties are negative)."""

    match: int = 1
    mismatch: int = -2
    gap: int = -2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise AlignmentError("match reward must be positive")
        if self.mismatch >= 0 or self.gap >= 0:
            raise AlignmentError("mismatch and gap penalties must be negative")

    @cached_property
    def substitution_table(self) -> np.ndarray:
        """Precomputed 5x5 substitution scores, indexed as ``table[a, b]``.

        Built once per scheme instance so the kernels' inner loops do a
        single fancy-indexed lookup instead of re-evaluating the match
        predicate per cell.  Valid for ACGTN codes (0..4) only.
        """
        codes = np.arange(5)
        is_match = (codes[:, None] == codes[None, :]) & (codes[:, None] < 4)
        table = np.where(is_match, self.match, self.mismatch).astype(np.int64)
        table.setflags(write=False)
        return table

    def substitution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized substitution scores for code arrays ``a`` vs ``b``."""
        return self.substitution_table[np.asarray(a), np.asarray(b)]

    def perfect_score(self, length: int) -> int:
        """Score of ``length`` consecutive matches."""
        return self.match * int(length)


#: Default scheme: +1 match, -2 mismatch, -2 gap.
#:
#: The penalties are chosen so that extension score drift is *negative* on
#: unrelated (random) sequence — X-drop then terminates false-positive
#: candidates after a few antidiagonals, the fast path the paper's
#: load-imbalance analysis depends on (§4.2) — while remaining *positive*
#: on true overlaps even at raw-long-read error rates (15% per read, ~72%
#: pairwise identity).  A +1/-1/-1 scheme would sit above the critical line
#: for 4-letter alphabets and extend indefinitely on random pairs.
DEFAULT_SCORING = ScoringScheme()
