"""Rendezvous-based collectives for micro (message-level) SPMD programs.

Semantics match the blocking MPI collectives of the paper's BSP code:

* :meth:`Collectives.barrier` — all ranks wait for the last arrival plus
  the dissemination-tree latency;
* :meth:`Collectives.allreduce` — barrier-shaped rendezvous carrying a
  value reduced with a user operator;
* :meth:`Collectives.alltoallv` — irregular personalized exchange of real
  payload lists with modeled timing: the collective starts when the last
  rank arrives and completes for everyone after the modeled exchange
  duration; each rank's *personal* send/recv cost counts as communication
  and the remainder (skew + waiting on the slowest) as synchronization —
  the same accounting the macro BSP engine uses;
* :meth:`Collectives.split_barrier_enter` / :meth:`split_barrier_wait` —
  the UPC++ split-phase barrier of the async code (§3.2): enter is
  non-blocking, wait completes once all ranks have entered.  Like the
  rendezvous points, split barriers are *reusable*: firing starts a fresh
  generation, so the same tag synchronizes again on the next
  enter/wait cycle (a rank must wait before re-entering a tag).

All generators are driven with ``yield from`` inside rank programs.  When
the context carries a :class:`~repro.obs.tracer.Tracer`, every rendezvous
arrival/release and split-barrier transition emits an instant event, and
all waiting/transfer time lands in the trace as phase events via
:meth:`SpmdContext.record` / :meth:`SpmdContext.charge`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError
from repro.runtime.context import SpmdContext

__all__ = ["Collectives"]


class _Rendezvous:
    """One reusable all-ranks meeting point (per tag)."""

    def __init__(self, ctx: SpmdContext, tag: str):
        self.ctx = ctx
        self.tag = tag
        self.reset()

    def reset(self) -> None:
        self.arrived = 0
        self.payloads: dict[int, Any] = {}
        self.event = self.ctx.engine.event(f"rendezvous-{self.tag}")

    def arrive(self, rank: int, payload: Any = None):
        """Generator: deposit payload, wait for the last arrival.

        Returns ``(wait_seconds, all_payloads, release_event_value)``.
        """
        if rank in self.payloads:
            raise SimulationError(
                f"rank {rank} entered rendezvous {self.tag!r} twice"
            )
        self.payloads[rank] = payload
        self.arrived += 1
        arrival_time = self.ctx.engine.now
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                rank, "rendezvous_arrival", arrival_time,
                tag=self.tag, arrived=self.arrived,
            )
        if self.arrived == self.ctx.num_ranks:
            if self.ctx.tracer is not None:
                self.ctx.tracer.instant(
                    rank, "rendezvous_release", arrival_time, tag=self.tag
                )
            payloads = self.payloads
            event = self.event
            self.reset()
            event.succeed((self.ctx.engine.now, payloads))
            _last, payloads = event.value
            return 0.0, payloads
        event = self.event
        yield event
        t_last, payloads = event.value
        return t_last - arrival_time, payloads


class _SplitBarrier:
    """One reusable split-phase barrier (per tag).

    Firing starts a fresh *generation* — the historical bug here was never
    resetting after the release event fired, which made every later barrier
    on the same tag a silent no-op (it completed immediately without
    synchronizing).  Each rank's ``enter`` pins the generation event it
    joined, so a rank can still ``wait`` on generation *g* after faster
    ranks have begun generation *g+1*.
    """

    def __init__(self, ctx: SpmdContext, tag: str):
        self.ctx = ctx
        self.tag = tag
        self.generation = 0
        self.count = 0
        self.event = ctx.engine.event(f"split-{tag}-g0")
        #: rank -> release event of the generation that rank entered
        self.entered: dict[int, Any] = {}

    def enter(self, rank: int) -> None:
        if rank in self.entered:
            raise SimulationError(
                f"rank {rank} re-entered split barrier {self.tag!r} "
                f"before waiting on it"
            )
        self.entered[rank] = self.event
        self.count += 1
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                rank, "split_barrier_enter", self.ctx.engine.now,
                tag=self.tag, generation=self.generation,
                entered=self.count,
            )
        if self.count == self.ctx.num_ranks:
            event = self.event
            self.generation += 1
            self.count = 0
            self.event = self.ctx.engine.event(
                f"split-{self.tag}-g{self.generation}"
            )
            event.succeed(self.ctx.engine.now)

    def wait(self, rank: int):
        event = self.entered.pop(rank, None)
        if event is None:
            raise SimulationError(
                f"split barrier {self.tag!r} waited before enter"
            )
        t0 = self.ctx.engine.now
        if not event.fired:
            yield event
        self.ctx.record("sync", rank, self.ctx.engine.now - t0,
                        name=f"split-barrier-wait:{self.tag}")
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                rank, "split_barrier_release", self.ctx.engine.now,
                tag=self.tag,
            )
        yield self.ctx.charge("sync", rank, self.ctx.net.barrier_time(),
                              name=f"split-barrier:{self.tag}")


class Collectives:
    """Collective operations bound to one SPMD context."""

    def __init__(self, ctx: SpmdContext):
        self.ctx = ctx
        self._points: dict[str, _Rendezvous] = {}
        self._split_state: dict[str, _SplitBarrier] = {}

    def _point(self, tag: str) -> _Rendezvous:
        point = self._points.get(tag)
        if point is None:
            point = _Rendezvous(self.ctx, tag)
            self._points[tag] = point
        return point

    # -- barrier -------------------------------------------------------------

    def barrier(self, rank: int, tag: str = "barrier"):
        """Blocking barrier; waiting time is charged as synchronization."""
        wait, _ = yield from self._point(tag).arrive(rank)
        # `wait` already elapsed while blocked in the rendezvous: record it
        # without advancing the clock again, then pay the tree latency
        self.ctx.record("sync", rank, wait, name=f"barrier-wait:{tag}")
        yield self.ctx.charge("sync", rank, self.ctx.net.barrier_time(),
                              name=f"barrier:{tag}")

    # -- allreduce -------------------------------------------------------------

    def allreduce(self, rank: int, value: Any,
                  op: Callable[[Any, Any], Any] = lambda a, b: a + b,
                  tag: str = "allreduce"):
        """Reduce ``value`` across ranks; returns the reduction everywhere."""
        wait, payloads = yield from self._point(tag).arrive(rank, value)
        self.ctx.record("sync", rank, wait, name=f"allreduce-wait:{tag}")
        yield self.ctx.charge("sync", rank, self.ctx.net.allreduce_time(),
                              name=f"allreduce:{tag}")
        result = None
        for r in sorted(payloads):
            result = payloads[r] if result is None else op(result, payloads[r])
        return result

    # -- split-phase barrier ----------------------------------------------------

    def _split(self, tag: str) -> "_SplitBarrier":
        state = self._split_state.get(tag)
        if state is None:
            state = _SplitBarrier(self.ctx, tag)
            self._split_state[tag] = state
        return state

    def split_barrier_enter(self, rank: int, tag: str = "split") -> None:
        """Non-blocking barrier entry (phase 1 of the UPC++ split barrier)."""
        self._split(tag).enter(rank)

    def split_barrier_wait(self, rank: int, tag: str = "split"):
        """Phase 2: wait until every rank has entered; wait time is sync."""
        yield from self._split(tag).wait(rank)

    # -- irregular all-to-all -----------------------------------------------------

    def alltoallv(self, rank: int, send: dict[int, list], send_bytes: float,
                  recv_bytes_hint: float | None = None,
                  tag: str = "alltoallv",
                  efficiency_scale: float = 1.0):
        """Exchange per-destination payload lists; returns received items.

        ``send`` maps destination rank -> list of (item, nbytes) tuples.
        Returns the flat list of (item, nbytes) this rank received.  The
        timing model is shared with the macro engine: the collective ends
        ``alltoallv_time(max_send, max_recv, sources)`` after the last
        arrival; this rank's personal volume cost is communication, the
        rest synchronization.
        """
        wait, payloads = yield from self._point(tag).arrive(rank, send)

        # gather what everyone sent to whom (identical result on all ranks
        # because payloads are shared through the rendezvous)
        recv_items: list = []
        recv_bytes = 0.0
        per_rank_send = np.zeros(self.ctx.num_ranks)
        per_rank_recv = np.zeros(self.ctx.num_ranks)
        source_counts = np.zeros(self.ctx.num_ranks)
        for src, mapping in payloads.items():
            for dst, items in mapping.items():
                if not items:
                    continue
                nbytes = float(sum(b for _, b in items))
                per_rank_send[src] += nbytes
                per_rank_recv[dst] += nbytes
                source_counts[dst] += 1
                if dst == rank:
                    recv_items.extend(items)
                    recv_bytes += nbytes

        avg_sources = max(1.0, float(source_counts.mean()))
        # injected link degradation slows the exchange for everyone: fold
        # the window's time dilation into the efficiency scale
        eff = efficiency_scale
        if self.ctx.faults is not None:
            eff = efficiency_scale / self.ctx.faults.link_dilation(
                self.ctx.engine.now
            )
        duration = self.ctx.net.alltoallv_time(
            per_rank_send.max(initial=0.0),
            per_rank_recv.max(initial=0.0),
            avg_sources,
            efficiency_scale=eff,
        )
        personal = min(
            duration,
            self.ctx.net.alltoallv_rank_time(
                send_bytes, recv_bytes, avg_sources,
                efficiency_scale=eff,
            ),
        )
        self.ctx.record("sync", rank, wait,  # elapsed in rendezvous
                        name=f"alltoallv-wait:{tag}")
        yield self.ctx.charge("comm", rank, personal,
                              name=f"alltoallv:{tag}")
        yield self.ctx.charge("sync", rank, duration - personal,
                              name=f"alltoallv-skew:{tag}")
        metrics = self.ctx.metrics
        if metrics is not None:
            metrics.inc("coll_messages", rank,
                        sum(1 for items in send.values() if items))
            metrics.inc("bytes_sent", rank, send_bytes)
            metrics.inc("bytes_recv", rank, recv_bytes)
        return recv_items

    def alltoallv_resilient(self, rank: int, send: dict[int, list],
                            send_bytes: float, round_idx: int,
                            tag: str = "alltoallv",
                            efficiency_scale: float = 1.0):
        """An :meth:`alltoallv` that retries when the fault plan fails it.

        The context's fault injector decides — identically on every rank,
        from a round-keyed stream — how many attempts round ``round_idx``
        needs.  Failed attempts pay the full exchange cost (the collective
        ran, then a lost contribution invalidated it) and their received
        data is discarded; only the final attempt's payload is returned.
        """
        faults = self.ctx.faults
        attempts = faults.exchange_attempts(round_idx) if faults is not None else 1
        for a in range(attempts - 1):
            if self.ctx.tracer is not None:
                self.ctx.tracer.instant(
                    rank, "exchange_retry", self.ctx.engine.now,
                    tag=tag, round=round_idx, attempt=a + 1,
                )
            if self.ctx.metrics is not None:
                self.ctx.metrics.inc("exchange_retries", rank)
            yield from self.alltoallv(
                rank, send, send_bytes, tag=f"{tag}!a{a}",
                efficiency_scale=efficiency_scale,
            )
        result = yield from self.alltoallv(
            rank, send, send_bytes, tag=tag,
            efficiency_scale=efficiency_scale,
        )
        return result
