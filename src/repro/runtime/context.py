"""SPMD execution context shared by all ranks of a micro run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.report import PhaseTimers
from repro.machine.config import MachineSpec
from repro.machine.engine import Engine
from repro.machine.memory import MemoryTracker
from repro.machine.network import NetworkModel

__all__ = ["SpmdContext"]


@dataclass
class SpmdContext:
    """Everything a simulated rank program needs.

    Rank programs are generators; they charge time to the four breakdown
    categories through :attr:`timers` *and* advance their simulated clock by
    yielding the same number of seconds — the context only centralizes the
    shared machinery (engine, network model, memory tracker).
    """

    machine: MachineSpec
    engine: Engine = field(default_factory=Engine)

    def __post_init__(self) -> None:
        self.net = NetworkModel(self.machine)
        self.memory = MemoryTracker(self.machine)
        self.timers = PhaseTimers(self.machine.total_ranks)

    @property
    def num_ranks(self) -> int:
        return self.machine.total_ranks

    def charge(self, category: str, rank: int, seconds: float) -> float:
        """Record ``seconds`` under ``category`` and return it (to yield)."""
        self.timers.add(category, rank, seconds)
        return seconds
