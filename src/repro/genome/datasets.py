"""Named workload presets mirroring Table 1 of the paper.

Two tiers per dataset (DESIGN.md §2):

* **Table-1-exact statistical presets** (``ecoli30x``, ``ecoli100x``,
  ``human_ccs``): read and task counts match the paper exactly; these feed
  the statistical workload generator in :mod:`repro.pipeline.workload`, used
  by the figure benchmarks where only distributions matter.
* **Sequence-level reduced presets** (``*_tiny`` / ``*_small``): genuinely
  synthesized genomes + reads, small enough to run the full pipeline
  (k-mers -> BELLA filter -> candidates -> X-drop alignment) in pure Python.
  They are used by tests, examples, and for calibrating the statistical
  distributions of the exact presets.

Paper Table 1:

=============  =================  =========  ==========
Short name     Species            Reads      Tasks
=============  =================  =========  ==========
E. coli 30x    Escherichia coli   16,890     2,270,260
E. coli 100x   Escherichia coli   91,394     24,869,171
Human CCS      Homo sapiens       1,148,839  87,621,409
=============  =================  =========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigurationError
from repro.genome.synth import (
    ErrorModel,
    GenomeSimulator,
    LongReadSequencer,
    ReadLengthModel,
    SequencingRun,
)

__all__ = ["DatasetSpec", "DATASETS", "synthesize_dataset", "table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset, either statistical (Table-1-exact) or sequence-level.

    Parameters
    ----------
    name, species : identification (Table 1 columns).
    n_reads, n_tasks : totals; for statistical presets these equal Table 1.
    coverage : sequencing depth.
    error_rate : per-base sequencer error rate (CCS reads are accurate,
        raw long reads are not; affects the BELLA k-mer filter).
    mean_read_length, length_sigma : read length distribution (lognormal).
    genome_size : genome size in bp; for sequence-level presets this is the
        synthesized size, for statistical presets it is implied
        (``n_reads * mean_read_length / coverage``) and recorded for
        reference only.
    sequence_level : True when the preset is meant to be synthesized
        base-by-base and run through the real pipeline.
    """

    name: str
    species: str
    n_reads: int
    n_tasks: int
    coverage: float
    error_rate: float
    mean_read_length: float
    length_sigma: float = 0.35
    genome_size: int = 0
    sequence_level: bool = False

    @property
    def tasks_per_read(self) -> float:
        return self.n_tasks / max(1, self.n_reads)

    @property
    def total_read_bases(self) -> float:
        return self.n_reads * self.mean_read_length

    def implied_genome_size(self) -> float:
        """Genome size implied by read volume and coverage."""
        if self.genome_size:
            return float(self.genome_size)
        return self.total_read_bases / self.coverage


def _exact(name, species, reads, tasks, coverage, err, mean_len, sigma) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        species=species,
        n_reads=reads,
        n_tasks=tasks,
        coverage=coverage,
        error_rate=err,
        mean_read_length=mean_len,
        length_sigma=sigma,
    )


#: Registry of named dataset presets.
DATASETS: dict[str, DatasetSpec] = {
    # ------- Table-1-exact statistical presets ---------------------------
    # Mean read lengths chosen from the datasets' public characteristics:
    # E. coli 30x (CBCB PacBio): ~8.6 kb mean so 16,890 reads at 30x imply a
    # ~4.6 Mbp genome (actual E. coli K-12 size). E. coli 100x (NCBI): ~5 kb.
    # Human CCS: ~12.5 kb highly-accurate consensus reads (error ~1%).
    "ecoli30x": _exact(
        "ecoli30x", "Escherichia coli", 16_890, 2_270_260,
        coverage=30.0, err=0.15, mean_len=8_200.0, sigma=0.45,
    ),
    "ecoli100x": _exact(
        "ecoli100x", "Escherichia coli", 91_394, 24_869_171,
        coverage=100.0, err=0.15, mean_len=5_060.0, sigma=0.40,
    ),
    "human_ccs": _exact(
        "human_ccs", "Homo sapiens", 1_148_839, 87_621_409,
        coverage=4.6, err=0.01, mean_len=12_400.0, sigma=0.20,
    ),
    # A latency-bound cousin: protein-search-like workloads have far
    # shorter sequences (paper 2: "typically shorter reads but also a 20
    # character alphabet"), so their many-to-many exchange is dominated by
    # per-message costs rather than bandwidth.  Used by the aggregation
    # ablation (the paper's 5 future-work scenario).
    "protein_search": _exact(
        "protein_search", "protein database", 200_000, 5_000_000,
        coverage=20.0, err=0.05, mean_len=250.0, sigma=0.30,
    ),
    # ------- Sequence-level reduced presets -------------------------------
    "ecoli30x_tiny": DatasetSpec(
        name="ecoli30x_tiny", species="synthetic",
        n_reads=0, n_tasks=0,  # determined by synthesis
        coverage=30.0, error_rate=0.10,
        mean_read_length=900.0, length_sigma=0.35,
        genome_size=40_000, sequence_level=True,
    ),
    "ecoli100x_tiny": DatasetSpec(
        name="ecoli100x_tiny", species="synthetic",
        n_reads=0, n_tasks=0,
        coverage=100.0, error_rate=0.10,
        mean_read_length=900.0, length_sigma=0.35,
        genome_size=20_000, sequence_level=True,
    ),
    "human_ccs_tiny": DatasetSpec(
        name="human_ccs_tiny", species="synthetic",
        n_reads=0, n_tasks=0,
        coverage=5.0, error_rate=0.01,
        mean_read_length=1_200.0, length_sigma=0.20,
        genome_size=120_000, sequence_level=True,
    ),
    "micro": DatasetSpec(
        name="micro", species="synthetic",
        n_reads=0, n_tasks=0,
        coverage=8.0, error_rate=0.08,
        mean_read_length=600.0, length_sigma=0.30,
        genome_size=12_000, sequence_level=True,
    ),
    "ecoli30x_small": DatasetSpec(
        name="ecoli30x_small", species="synthetic",
        n_reads=0, n_tasks=0,
        coverage=30.0, error_rate=0.10,
        mean_read_length=1_500.0, length_sigma=0.40,
        genome_size=200_000, sequence_level=True,
    ),
}


def synthesize_dataset(spec: DatasetSpec, seed: int = 0) -> SequencingRun:
    """Synthesize a sequence-level dataset: genome + error-laden reads."""
    if not spec.sequence_level:
        raise ConfigurationError(
            f"dataset {spec.name!r} is a statistical preset; use "
            "repro.pipeline.workload.StatisticalWorkload for it"
        )
    from repro.utils.rng import RngFactory

    rngs = RngFactory(seed)
    genome = GenomeSimulator(size=spec.genome_size).generate(rngs.stream("genome"))
    sequencer = LongReadSequencer(
        length_model=ReadLengthModel(
            mean_length=spec.mean_read_length,
            sigma=spec.length_sigma,
            min_len=max(100, int(spec.mean_read_length // 8)),
            max_len=int(spec.mean_read_length * 8),
        ),
        error_model=ErrorModel(error_rate=spec.error_rate),
    )
    return sequencer.sequence(genome, spec.coverage, rngs.stream("read-sampler"))


def table1_rows() -> list[dict]:
    """The three Table-1 rows as dictionaries (for the Table 1 benchmark)."""
    rows = []
    for key in ("ecoli30x", "ecoli100x", "human_ccs"):
        spec = DATASETS[key]
        rows.append(
            {
                "short_name": spec.name,
                "species": spec.species,
                "reads": spec.n_reads,
                "tasks": spec.n_tasks,
            }
        )
    return rows
