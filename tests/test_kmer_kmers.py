"""Tests for k-mer packing, reverse complement, and canonicalization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SequenceError
from repro.genome import alphabet
from repro.kmer.kmers import (
    KmerExtractor,
    canonical_kmers,
    pack_kmers,
    revcomp_packed,
    unpack_kmer,
)

dna_acgt = st.text(alphabet="ACGT", min_size=0, max_size=120)


def test_pack_simple():
    codes = alphabet.encode("ACGT")
    packed, pos = pack_kmers(codes, 2)
    # AC=0*4+1=1, CG=1*4+2=6, GT=2*4+3=11
    assert packed.tolist() == [1, 6, 11]
    assert pos.tolist() == [0, 1, 2]


def test_pack_skips_N_windows():
    codes = alphabet.encode("ACNGT")
    packed, pos = pack_kmers(codes, 2)
    assert pos.tolist() == [0, 3]  # AC and GT only
    assert packed.tolist() == [1, 11]


def test_pack_short_sequence():
    packed, pos = pack_kmers(alphabet.encode("AC"), 5)
    assert packed.size == 0 and pos.size == 0


def test_pack_invalid_k():
    with pytest.raises(SequenceError):
        pack_kmers(alphabet.encode("ACGT"), 0)
    with pytest.raises(SequenceError):
        pack_kmers(alphabet.encode("ACGT"), 32)


@given(dna_acgt, st.integers(min_value=1, max_value=31))
def test_unpack_inverts_pack(s, k):
    codes = alphabet.encode(s)
    packed, pos = pack_kmers(codes, k)
    for p, start in zip(packed[:5], pos[:5]):
        assert unpack_kmer(int(p), k) == s[start: start + k]


@given(dna_acgt, st.integers(min_value=1, max_value=31))
def test_revcomp_packed_matches_string_revcomp(s, k):
    codes = alphabet.encode(s)
    packed, pos = pack_kmers(codes, k)
    if packed.size == 0:
        return
    rc = revcomp_packed(packed, k)
    for p, r, start in zip(packed[:5], rc[:5], pos[:5]):
        window = codes[start: start + k]
        expected = alphabet.decode(alphabet.reverse_complement(window))
        assert unpack_kmer(int(r), k) == expected


@given(dna_acgt, st.integers(min_value=1, max_value=31))
def test_revcomp_packed_involution(s, k):
    packed, _ = pack_kmers(alphabet.encode(s), k)
    if packed.size:
        assert np.array_equal(revcomp_packed(revcomp_packed(packed, k), k), packed)


@given(dna_acgt, st.integers(min_value=1, max_value=31))
def test_canonical_strand_invariance(s, k):
    codes = alphabet.encode(s)
    rc_codes = alphabet.reverse_complement(codes)
    fwd, _ = canonical_kmers(codes, k)
    rev, _ = canonical_kmers(rc_codes, k)
    # canonical multisets must be identical across strands
    assert np.array_equal(np.sort(fwd), np.sort(rev))


def test_extractor_readset():
    from repro.genome.sequence import ReadSet

    rs = ReadSet.from_strings(["ACGTACGT", "TTT", "NN"])
    kmers, rids, pos = KmerExtractor(k=3).extract_readset(rs)
    assert kmers.size == 6 + 1 + 0
    assert set(rids.tolist()) == {0, 1}
    assert np.all(pos[rids == 0] == np.arange(6))


def test_extractor_expected_kmers():
    assert KmerExtractor(k=17).expected_kmers(1000, 30) == 30_000


def test_extractor_invalid_k():
    with pytest.raises(SequenceError):
        KmerExtractor(k=40)
