"""Sharded out-of-core workload tests.

The contract under test (docs/ARCHITECTURE.md "Sharded workloads"):
``shard_tasks`` and ``max_resident_shards`` are *memory* knobs — for any
values, a :class:`~repro.pipeline.sharded.ShardedWorkload` must produce
field-identical assignments, identical micro plans, and bit-identical run
signatures to the materialized path on every engine, while never holding
more than the resident-shard budget in memory (enforced by the
:class:`~repro.machine.memory.NodeMemory` ledger, observable through
``store.stats()``).

Also covers the two satellite fixes that ride along: the
:class:`StatisticalWorkload` stage-1 partition memo, and the workload
cache keying on the full calibration tuple.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.align import cost as cost_mod
from repro.core.api import (
    clear_workload_cache,
    get_workload,
    run_alignment,
)
from repro.errors import ConfigurationError
from repro.genome.datasets import DATASETS, DatasetSpec
from repro.pipeline.sharded import ShardedWorkload, ShardStore
from repro.pipeline.workload import StatisticalWorkload

ENGINES = ("bsp", "async", "hybrid", "bsp-micro", "async-micro")

ASSIGNMENT_FIELDS = (
    "reads_per_rank", "partition_bytes", "tasks_per_rank",
    "compute_seconds", "local_pair_seconds", "lookups", "lookup_bytes",
    "incoming_lookups", "incoming_bytes",
)

#: small statistical preset for the synthetic sharding tests — real Table-1
#: shape, but cheap enough to aggregate several times per test run
TINY_STAT = DatasetSpec(
    name="tiny_stat_test", species="test", n_reads=4_000, n_tasks=150_000,
    coverage=10.0, error_rate=0.1, mean_read_length=3_000,
    length_sigma=0.5, genome_size=1_000_000, sequence_level=False,
)


@pytest.fixture(scope="module")
def concrete():
    return get_workload("micro", seed=11)


def shard_sizes(n_tasks: int) -> tuple[int, ...]:
    return (1, 7, n_tasks, n_tasks + 1)


def assert_assignments_equal(a, b, context: str) -> None:
    for field in ASSIGNMENT_FIELDS:
        x, y = getattr(a, field), getattr(b, field)
        assert np.array_equal(x, y), f"{context}: {field} diverged"
    assert a.total_reads == b.total_reads
    assert a.total_tasks == b.total_tasks


# -- bit-identity vs the materialized path -----------------------------------


@pytest.mark.parametrize("num_ranks", [1, 3, 8])
def test_assignment_field_identity_all_shard_sizes(concrete, num_ranks):
    base = concrete.assignment(num_ranks)
    for shard in shard_sizes(concrete.n_tasks):
        sw = ShardedWorkload.from_workload(concrete, shard_tasks=shard,
                                           max_resident_shards=2)
        try:
            assert_assignments_equal(
                sw.assignment(num_ranks), base,
                f"shard={shard} P={num_ranks}",
            )
        finally:
            sw.close()


def test_micro_plan_identity_all_shard_sizes(concrete):
    base = concrete.micro_plan(8)
    for shard in shard_sizes(concrete.n_tasks):
        sw = ShardedWorkload.from_workload(concrete, shard_tasks=shard,
                                           max_resident_shards=2)
        try:
            plan = sw.micro_plan(8)
            for field in ("boundaries", "assigned", "owner_a", "owner_b",
                          "remote_read"):
                assert np.array_equal(getattr(plan, field),
                                      getattr(base, field)), \
                    f"shard={shard}: {field} diverged"
        finally:
            sw.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_run_signature_identity_all_engines(concrete, engine):
    """Satellite: every shard size hits the materialized digest, 5 engines."""
    base = run_alignment(concrete, 2, engine, cores_per_node=4).signature()
    for shard in shard_sizes(concrete.n_tasks):
        sw = ShardedWorkload.from_workload(concrete, shard_tasks=shard,
                                           max_resident_shards=2)
        try:
            sig = run_alignment(sw, 2, engine, cores_per_node=4).signature()
            assert sig == base, (
                f"{engine} shard={shard}: sharded run signature diverged "
                f"from the materialized path"
            )
        finally:
            sw.close()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    shard=st.integers(min_value=1, max_value=2000),
    num_ranks=st.sampled_from([1, 2, 5, 8]),
)
def test_assignment_identity_property(shard, num_ranks):
    """Any (shard size, rank count) reproduces the materialized fields."""
    concrete = get_workload("micro", seed=11)
    sw = ShardedWorkload.from_workload(concrete, shard_tasks=shard,
                                       max_resident_shards=3)
    try:
        assert_assignments_equal(
            sw.assignment(num_ranks), concrete.assignment(num_ranks),
            f"shard={shard} P={num_ranks}",
        )
    finally:
        sw.close()


# -- synthetic (paper-scale) backing -----------------------------------------


def test_synthetic_shard_size_invariance():
    """The generator blocks make shard size invisible in the aggregates."""
    a = None
    for shard in (1 << 15, 12_345, TINY_STAT.n_tasks + 1):
        sw = ShardedWorkload.synthetic(TINY_STAT, seed=5, shard_tasks=shard,
                                       max_resident_shards=2)
        try:
            cur = sw.assignment(16)
            if a is None:
                a = cur
            else:
                assert_assignments_equal(cur, a, f"shard={shard}")
        finally:
            sw.close()
    assert a.tasks_per_rank.sum() == TINY_STAT.n_tasks


def test_synthetic_matches_statistical_stage1():
    """Stage-1 partition agrees with StatisticalWorkload for same spec/seed."""
    sw = ShardedWorkload.synthetic(TINY_STAT, seed=5, shard_tasks=1 << 15)
    st_wl = StatisticalWorkload(TINY_STAT, seed=5)
    try:
        assert np.array_equal(sw.read_lengths, st_wl.read_lengths)
        a, b = sw.assignment(8), st_wl.assignment(8)
        assert np.array_equal(a.reads_per_rank, b.reads_per_rank)
        assert np.array_equal(a.partition_bytes, b.partition_bytes)
    finally:
        sw.close()


def test_synthetic_is_macro_only():
    sw = ShardedWorkload.synthetic(TINY_STAT, seed=0, shard_tasks=1 << 15)
    try:
        assert not sw.is_concrete
        with pytest.raises(ConfigurationError, match="synthetic"):
            sw.micro_plan(4)
        with pytest.raises(ConfigurationError, match="synthetic"):
            _ = sw.reads
        with pytest.raises(ConfigurationError, match="message-level"):
            run_alignment(sw, 2, "bsp-micro", cores_per_node=4)
    finally:
        sw.close()


def test_synthetic_rejects_sequence_level_specs():
    with pytest.raises(ConfigurationError, match="sequence-level"):
        ShardedWorkload.synthetic(DATASETS["micro"])


# -- resident-shard budget / spill -------------------------------------------


def test_store_bounds_resident_memory(concrete):
    sw = ShardedWorkload.from_workload(concrete, shard_tasks=100,
                                       max_resident_shards=2)
    try:
        sw.assignment(8)
        stats = sw.store.stats()
        assert stats["n_shards"] == -(-concrete.n_tasks // 100)
        assert stats["resident"] <= 2
        assert stats["peak_resident_bytes"] <= stats["budget_bytes"]
        assert stats["evictions"] > 0 and stats["spilled"] > 0
        # a second full pass reloads from spill instead of rebuilding
        builds = stats["builds"]
        sw.micro_plan(8)
        stats = sw.store.stats()
        assert stats["builds"] == builds
        assert stats["reloads"] > 0
    finally:
        sw.close()


def test_store_single_shard_never_spills(concrete):
    sw = ShardedWorkload.from_workload(
        concrete, shard_tasks=concrete.n_tasks, max_resident_shards=1)
    try:
        sw.assignment(4)
        stats = sw.store.stats()
        assert stats["n_shards"] == 1
        assert stats["evictions"] == 0 and stats["spilled"] == 0
    finally:
        sw.close()


def test_store_validates_knobs():
    with pytest.raises(ConfigurationError):
        ShardStore(10, 0, lambda s, lo, hi: {}, 8)
    with pytest.raises(ConfigurationError):
        ShardStore(10, 4, lambda s, lo, hi: {}, 8, max_resident=0)


def test_close_is_idempotent(concrete):
    sw = ShardedWorkload.from_workload(concrete, shard_tasks=64)
    sw.assignment(4)
    sw.close()
    sw.close()


# -- caches ------------------------------------------------------------------


def test_sharded_workload_caches_per_rank_count(concrete):
    sw = ShardedWorkload.from_workload(concrete, shard_tasks=256)
    try:
        a1 = sw.assignment(8)
        a2 = sw.assignment(8)
        assert a1 is a2
        assert sw.assignment_cache.stats()["hits"] >= 1
        p1 = sw.micro_plan(8)
        assert sw.micro_plan(8) is p1
    finally:
        sw.close()


def test_get_workload_shard_knobs_key_the_cache():
    clear_workload_cache()
    w0 = get_workload("micro", seed=11)
    s1 = get_workload("micro", seed=11, shard_tasks=128)
    s2 = get_workload("micro", seed=11, shard_tasks=128)
    s3 = get_workload("micro", seed=11, shard_tasks=256)
    assert s1 is s2
    assert s1 is not s3 and s1 is not w0
    assert isinstance(s1, ShardedWorkload) and s1.is_concrete
    # the sharded wrapper shares the cached concrete backing
    assert s1._backing is w0


def test_workload_cache_includes_calibration_target():
    """Satellite fix: retargeted calibration must not serve a stale entry.

    Before the fix the cache keyed on ``(name, seed)`` alone, so changing
    a dataset's cost anchor (or registering a variant spec under the same
    name) silently returned the workload calibrated against the *old*
    target.
    """
    clear_workload_cache()
    name = "ecoli30x"
    w1 = get_workload(name, seed=3)
    old = cost_mod.MEAN_TASK_COST[name]
    try:
        cost_mod.MEAN_TASK_COST[name] = old * 10
        w2 = get_workload(name, seed=3)
    finally:
        cost_mod.MEAN_TASK_COST[name] = old
    assert w2 is not w1, "calibration change must miss the cache"
    assert w2.cost_dist.scale == pytest.approx(10 * w1.cost_dist.scale,
                                               rel=1e-9)
    # and the original target hits its original entry again
    assert get_workload(name, seed=3) is w1


def test_statistical_partition_memoized():
    """Satellite fix: stage-1 shares computed once per rank count."""
    wl = StatisticalWorkload(TINY_STAT, seed=1)
    first = wl._partition(8)
    again = wl._partition(8)
    assert first is again
    stats = wl.partition_cache.stats()
    assert stats["hits"] >= 1 and stats["misses"] == 1
    # memoized outputs feed assignment unchanged
    a = wl.assignment(8)
    assert np.array_equal(a.reads_per_rank, first[1])
    assert np.array_equal(a.partition_bytes, first[2])
    # distinct rank counts are distinct entries, not collisions
    b4 = wl._partition(4)
    assert b4[0].size == 5 and first[0].size == 9
