"""Checkpointed migration and elastic-membership rebalancing (churn layer).

Production clusters change membership mid-run: spot semantics evict ranks
with a warning window, elastic allocations add ranks to a job already
underway.  This module is the engine-side machinery for surviving that
churn *conserved and bit-reproducibly*:

* :class:`MigrationLedger` — uniform accounting of honored joins,
  evictions, and checkpoint handoffs (tasks moved, bytes shipped, comm
  seconds charged), surfaced as the ``churn`` section of a run's
  ``details`` and the makespan-under-churn report;
* :func:`executor_map` — deterministic delegation of absent ranks' work to
  current members (micro BSP reassigns at superstep boundaries);
* :class:`ChurnPool` — a deterministic shared work pool for the micro
  async engine: members drain their own items first and claim *orphaned*
  items (owner departed, or not yet joined) in ascending owner order, so
  no unfinished work is ever stranded by a departure.

The macro engines' churn math lives in :mod:`repro.engines.common`
(``membership_share`` and the churn branch of ``apply_pull_faults``) —
this module deliberately sits below ``common`` in the import graph so both
layers can share the ledger.

Everything here is driven by the membership timeline of
:class:`repro.machine.degradation.DegradationSchedule`; nothing draws
randomness, so churn runs stay bit-identical per seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RankFailureError

__all__ = ["MigrationLedger", "ChurnPool", "PoolItem", "executor_map"]


@dataclass
class MigrationLedger:
    """Accounting of one run's honored membership events and handoffs."""

    #: ranks whose join was honored, in honor order
    joins: list[int] = field(default_factory=list)
    #: ranks whose eviction departure was honored, in honor order
    evictions: list[int] = field(default_factory=list)
    #: tasks handed off via checkpoint (migrated, *not* redone)
    tasks_migrated: float = 0.0
    #: checkpoint + partition bytes shipped during handoffs
    migration_bytes: float = 0.0
    #: per-rank comm seconds charged to migration transfers, summed
    migration_seconds: float = 0.0

    def record_join(self, rank: int) -> None:
        self.joins.append(int(rank))

    def record_evict(self, rank: int) -> None:
        self.evictions.append(int(rank))

    def record_migration(self, tasks: float, nbytes: float,
                         seconds: float) -> None:
        self.tasks_migrated += float(tasks)
        self.migration_bytes += float(nbytes)
        self.migration_seconds += float(seconds)

    @property
    def active(self) -> bool:
        """Did any membership event actually get honored?"""
        return bool(self.joins or self.evictions or self.tasks_migrated)

    def churn_details(self) -> dict:
        """The uniform ``details["churn"]`` section of a churned run."""
        return {
            "joins_honored": list(self.joins),
            "evictions_honored": list(self.evictions),
            "tasks_migrated": float(self.tasks_migrated),
            "migration_bytes": float(self.migration_bytes),
            "migration_seconds": float(self.migration_seconds),
        }


def executor_map(member_mask: np.ndarray) -> np.ndarray:
    """Who executes each original rank's work under the given membership.

    A member executes its own work; an absent rank's work is delegated to
    ``members[orig % n_members]`` — deterministic, and spreading multiple
    absentees over distinct delegates.
    """
    members = np.flatnonzero(member_mask)
    if members.size == 0:
        raise RankFailureError(
            "no member ranks left; nothing to delegate work to"
        )
    exec_map = np.arange(member_mask.size, dtype=np.int64)
    for orig in np.flatnonzero(~member_mask):
        exec_map[orig] = members[int(orig) % members.size]
    return exec_map


@dataclass(frozen=True)
class PoolItem:
    """One claimable unit of work: an original owner's task group.

    ``rid`` is the remote read the group waits on, or ``-1`` for the
    owner's local-local group (no pull needed).
    """

    orig: int
    rid: int
    tasks: tuple[int, ...]


class ChurnPool:
    """Deterministic shared work pool for the micro async engine.

    Items stay queued under their original owner.  :meth:`claim` serves a
    rank its *own* queue first; once that drains, the rank may claim
    orphaned items — items whose owner is currently not a member (already
    departed, or not yet joined) — in ascending owner order.  Items of a
    present member are never stolen, so a churn plan whose events all land
    after the run finishes leaves every rank doing exactly its own work.
    """

    def __init__(self, items_by_orig: dict[int, list[PoolItem]]):
        self._queues: dict[int, deque[PoolItem]] = {
            orig: deque(items) for orig, items in sorted(items_by_orig.items())
        }

    def claim(self, rank: int, is_member) -> PoolItem | None:
        """Next item for ``rank``, or ``None`` if nothing is claimable now.

        ``is_member(orig)`` is evaluated at call time, so claimability
        tracks the live membership timeline.
        """
        q = self._queues.get(rank)
        if q:
            return q.popleft()
        for orig in self._queues:
            if orig == rank:
                continue
            q = self._queues[orig]
            if q and not is_member(orig):
                return q.popleft()
        return None

    def claimable(self, rank: int, is_member) -> bool:
        """Would :meth:`claim` currently return an item for ``rank``?"""
        q = self._queues.get(rank)
        if q:
            return True
        return any(
            orig != rank and q and not is_member(orig)
            for orig, q in self._queues.items()
        )

    def pending_anywhere(self) -> bool:
        """Is any item still unclaimed (regardless of membership)?"""
        return any(self._queues.values())

    def remaining_tasks(self, orig: int) -> int:
        """Unclaimed task count still queued under ``orig``."""
        q = self._queues.get(orig)
        return sum(len(item.tasks) for item in q) if q else 0
