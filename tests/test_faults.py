"""Tests for the fault-injection subsystem: plans, specs, injector,
degradation schedule, RPC retry machinery, and engine-level reactions."""

import numpy as np
import pytest

from repro.core.api import compare_engines, get_workload, run_alignment
from repro.engines.async_ import AsyncEngine
from repro.engines.bsp import BSPEngine
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.errors import (
    ConfigurationError,
    FaultError,
    RankFailureError,
    RpcTimeoutError,
)
from repro.faults import (
    DELIVER,
    DROP,
    MAX_EXCHANGE_ATTEMPTS,
    FaultInjector,
    FaultPlan,
    parse_fault_spec,
)
from repro.machine.config import cori_knl
from repro.machine.degradation import (
    DegradationSchedule,
    LinkWindow,
    RankKill,
    StraggleWindow,
)
from repro.obs import MetricsRegistry, Tracer, check_breakdown, check_trace
from repro.runtime.context import SpmdContext
from repro.runtime.rpc import RpcLayer


# -- spec parsing -----------------------------------------------------------

def test_parse_full_spec_roundtrip():
    plan = parse_fault_spec(
        "drop=0.1,delay=0.05:2ms,dup=0.02,xchg_drop=0.2,"
        "degrade=0.5@1:2,lag=3@0:1,straggle=2.5@r3:1:4,kill=r1@5,"
        "redistribute,timeout=10ms,retries=6,backoff=1ms,jitter=0.1"
    )
    assert plan.drop_prob == 0.1
    assert plan.delay_prob == 0.05 and plan.delay_seconds == pytest.approx(2e-3)
    assert plan.dup_prob == 0.02
    assert plan.exchange_drop_prob == 0.2
    assert plan.links[0].bandwidth_factor == 0.5
    assert plan.links[1].latency_factor == 3.0
    assert plan.stragglers[0] == StraggleWindow(rank=3, start=1, end=4,
                                                factor=2.5)
    assert plan.kills == (RankKill(rank=1, time=5.0),)
    assert plan.redistribute
    assert plan.rpc_timeout == pytest.approx(10e-3)
    assert plan.rpc_max_retries == 6
    assert plan.rpc_backoff == pytest.approx(1e-3)
    assert plan.rpc_backoff_jitter == 0.1
    assert plan.describe().startswith("drop=0.1")


def test_parse_duration_units():
    assert parse_fault_spec("delay=0.1:5us").delay_seconds == pytest.approx(5e-6)
    assert parse_fault_spec("delay=0.1:1.5s").delay_seconds == pytest.approx(1.5)


@pytest.mark.parametrize("spec", [
    "bogus=1",                   # unknown key
    "drop",                      # missing value
    "drop=x",                    # not a number
    "drop=1.5",                  # probability out of range
    "delay=0.1",                 # missing duration
    "degrade=0.5@5:1",           # window end before start
    "degrade=2@0:1",             # bandwidth factor > 1 (that's a speedup)
    "straggle=0.5@r0:0:1",       # straggle factor < 1
    "straggle=2@rX:0:1",         # malformed rank
    "kill=r0@1,kill=r0@2",       # duplicate kill
    "retries=1.5",               # non-integer retries
    "jitter=1",                  # jitter must be < 1
    "",                          # empty spec
])
def test_parse_rejects_malformed(spec):
    with pytest.raises(ConfigurationError):
        parse_fault_spec(spec)


def test_parse_error_names_offending_clause():
    with pytest.raises(ConfigurationError, match="bogus"):
        parse_fault_spec("drop=0.1,bogus=2")


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        FaultPlan(drop_prob=0.5, delay_prob=0.4, delay_seconds=1.0,
                  dup_prob=0.2)  # probabilities sum past 1
    with pytest.raises(ConfigurationError):
        FaultPlan(delay_prob=0.1)  # needs delay_seconds
    with pytest.raises(ConfigurationError):
        FaultPlan(rpc_backoff_jitter=1.0)
    assert not FaultPlan().active
    assert FaultPlan(drop_prob=0.1).message_faults_possible
    assert FaultPlan(kills=(RankKill(0, 1.0),)).message_faults_possible
    assert not FaultPlan(exchange_drop_prob=0.1).message_faults_possible


# -- degradation schedule ---------------------------------------------------

def test_link_dilation_windows():
    sched = DegradationSchedule(
        links=(LinkWindow(start=1.0, end=3.0, bandwidth_factor=0.5),),
        stragglers=(), kills=(),
    )
    assert sched.link_dilation(0.5) == 1.0
    assert sched.link_dilation(2.0) == 2.0  # 1 / 0.5
    assert sched.link_dilation(3.5) == 1.0
    # exact piecewise mean over [0, 4]: 2s at 1x, 2s at 2x -> 1.5
    assert sched.mean_link_dilation(0.0, 4.0) == pytest.approx(1.5)


def test_straggle_and_death():
    sched = DegradationSchedule(
        links=(),
        stragglers=(StraggleWindow(rank=1, start=0.0, end=2.0, factor=3.0),),
        kills=(RankKill(rank=2, time=5.0),),
    )
    assert sched.straggle_factor(1, 1.0) == 3.0
    assert sched.straggle_factor(0, 1.0) == 1.0
    assert sched.straggle_factor(1, 2.5) == 1.0
    assert sched.mean_straggle_factor(1, 0.0, 4.0) == pytest.approx(2.0)
    assert sched.death_time(2) == 5.0
    assert sched.death_time(0) is None
    assert not sched.dead(2, 4.9)
    assert sched.dead(2, 5.0)


# -- injector determinism ---------------------------------------------------

def test_injector_fate_sequence_deterministic():
    plan = FaultPlan(drop_prob=0.2, delay_prob=0.1, delay_seconds=1e-3,
                     dup_prob=0.1)
    inj1, inj2 = FaultInjector(plan, 42), FaultInjector(plan, 42)
    fates1 = [inj1.rpc_fate() for _ in range(200)]
    fates2 = [inj2.rpc_fate() for _ in range(200)]
    assert fates1 == fates2
    kinds = {k for k, _ in fates1}
    assert DELIVER in kinds and DROP in kinds


def test_injector_seed_changes_realization():
    plan = FaultPlan(drop_prob=0.3)
    f1 = [FaultInjector(plan, 1).rpc_fate() for _ in range(100)]
    f2 = [FaultInjector(plan, 2).rpc_fate() for _ in range(100)]
    assert f1 != f2


def test_exchange_attempts_round_keyed_and_cached():
    plan = FaultPlan(exchange_drop_prob=0.5)
    inj = FaultInjector(plan, 7)
    # order of asking must not matter (every rank asks independently)
    late_first = inj.exchange_attempts(3)
    early = inj.exchange_attempts(0)
    inj2 = FaultInjector(plan, 7)
    assert inj2.exchange_attempts(0) == early
    assert inj2.exchange_attempts(3) == late_first
    assert all(
        1 <= FaultInjector(plan, s).exchange_attempts(0) <= MAX_EXCHANGE_ATTEMPTS
        for s in range(20)
    )


def test_rank_rpc_fault_counts_order_independent():
    plan = FaultPlan(drop_prob=0.1, dup_prob=0.05)
    inj1, inj2 = FaultInjector(plan, 9), FaultInjector(plan, 9)
    a0, a1 = inj1.rank_rpc_fault_counts(0, 500), inj1.rank_rpc_fault_counts(1, 500)
    b1, b0 = inj2.rank_rpc_fault_counts(1, 500), inj2.rank_rpc_fault_counts(0, 500)
    assert a0 == b0 and a1 == b1


def test_backoff_exponential_with_bounded_jitter():
    plan = FaultPlan(drop_prob=0.1, rpc_backoff_jitter=0.25)
    inj = FaultInjector(plan, 0)
    for attempt in range(4):
        b = inj.backoff(1.0, attempt)
        assert 0.75 * 2 ** attempt <= b <= 1.25 * 2 ** attempt
    nojit = FaultInjector(FaultPlan(drop_prob=0.1, rpc_backoff_jitter=0.0), 0)
    assert nojit.backoff(2.0, 3) == 16.0


# -- RPC layer under faults -------------------------------------------------

def _rpc_ctx(plan=None, seed=0, ranks=2):
    faults = FaultInjector(plan, seed) if plan is not None else None
    ctx = SpmdContext(cori_knl(1, app_cores_per_node=ranks), faults=faults)
    return ctx


def _run_one_call(ctx, rpc):
    got = []

    def caller():
        rpc.call(0, 1, 7)
        yield ctx.charge("comm", 0, rpc.injection_cost())
        resp = yield from rpc.inboxes[0].get()
        got.append(resp)

    ctx.engine.process(caller())
    ctx.engine.run()
    return got


def test_rpc_drop_recovered_by_retry():
    # drop everything except the last allowed attempt: deterministic worst
    # case the retry budget can still absorb
    plan = FaultPlan(drop_prob=1.0, rpc_max_retries=2)
    ctx = _rpc_ctx(plan)
    rpc = RpcLayer(ctx)
    rpc.register(1, lambda token: (token * 2, 64.0))
    # all attempts drop -> typed timeout error
    with pytest.raises(RpcTimeoutError):
        _run_one_call(ctx, rpc)
    assert rpc.retries == 2
    assert rpc.timeouts == 3


def test_rpc_partial_drop_eventually_delivers():
    plan = FaultPlan(drop_prob=0.5, rpc_max_retries=8)
    # seed 4's fate stream drops the first two attempts, delivers the third
    ctx = _rpc_ctx(plan, seed=4)
    rpc = RpcLayer(ctx)
    rpc.register(1, lambda token: (token * 2, 64.0))
    got = _run_one_call(ctx, rpc)
    assert len(got) == 1 and got[0].value == 14
    assert got[0].attempts == 3
    assert rpc.retries == 2


def test_rpc_duplicate_deduplicated():
    plan = FaultPlan(dup_prob=1.0)
    ctx = _rpc_ctx(plan)
    rpc = RpcLayer(ctx)
    rpc.register(1, lambda token: (token, 8.0))
    got = _run_one_call(ctx, rpc)
    assert len(got) == 1  # exactly one response despite two copies
    assert rpc.dups_dropped == 1


def test_rpc_dead_target_typed_error():
    plan = FaultPlan(kills=(RankKill(rank=1, time=0.0),))
    ctx = _rpc_ctx(plan)
    rpc = RpcLayer(ctx)
    rpc.register(1, lambda token: (token, 8.0))
    with pytest.raises(RankFailureError, match="rank 1"):
        _run_one_call(ctx, rpc)


def test_rpc_handler_runs_at_service_time():
    """Regression for the latent timing bug: the handler must observe
    state as of *service* time, not issue time."""
    ctx = _rpc_ctx()
    rpc = RpcLayer(ctx)
    state = {"value": "at-issue"}
    rpc.register(1, lambda token: (state["value"], 8.0))

    got = []

    def caller():
        rpc.call(0, 1, 0)
        yield ctx.charge("comm", 0, rpc.injection_cost())
        resp = yield from rpc.inboxes[0].get()
        got.append(resp.value)

    def mutator():
        # runs before the request's alpha flight time has elapsed
        yield 1e-9
        state["value"] = "at-service"

    ctx.engine.process(caller())
    ctx.engine.process(mutator())
    ctx.engine.run()
    assert got == ["at-service"]


def test_rpc_fault_free_run_has_no_watchdogs():
    """Without message faults the layer must not schedule timeout events
    (stale watchdogs would inflate engine.now past the real finish)."""
    ctx = _rpc_ctx()
    rpc = RpcLayer(ctx)
    rpc.register(1, lambda token: (token, 8.0))
    got = _run_one_call(ctx, rpc)
    assert got[0].attempts == 1
    assert rpc.timeouts == 0
    # the clock stopped when the response was consumed, not at a timeout
    assert ctx.engine.now < rpc.timeout


# -- macro engines under faults --------------------------------------------

def _macro_setup(nodes=2, cores=4, seed=0):
    machine = cori_knl(nodes, app_cores_per_node=cores)
    wl = get_workload("ecoli30x", seed=seed)
    return wl.assignment(machine.total_ranks), machine


def _conserved(engine, assignment, machine, faults):
    tracer = Tracer()
    metrics = MetricsRegistry(machine.total_ranks)
    res = engine.run(assignment, machine, tracer=tracer, metrics=metrics,
                     faults=faults)
    assert check_breakdown(res.breakdown).ok
    assert check_trace(tracer, res.wall_time, machine.total_ranks).ok
    return res, metrics


@pytest.mark.parametrize("engine_cls", [BSPEngine, AsyncEngine])
def test_macro_kill_without_redistribute_raises(engine_cls):
    assignment, machine = _macro_setup()
    plan = FaultPlan(kills=(RankKill(rank=1, time=1.0),))
    with pytest.raises(RankFailureError, match="rank 1"):
        engine_cls().run(assignment, machine,
                         faults=FaultInjector(plan, 0))


@pytest.mark.parametrize("engine_cls", [BSPEngine, AsyncEngine])
def test_macro_kill_redistribute_completes_conserved(engine_cls):
    assignment, machine = _macro_setup()
    plan = FaultPlan(kills=(RankKill(rank=1, time=1.0),), redistribute=True)
    res, _ = _conserved(engine_cls(), assignment, machine,
                        FaultInjector(plan, 0))
    assert res.details["ranks_lost"] == [1]
    assert res.details["faults_injected"] >= 1


@pytest.mark.parametrize("engine_cls", [BSPEngine, AsyncEngine])
def test_macro_straggler_inflates_wall(engine_cls):
    assignment, machine = _macro_setup()
    clean = engine_cls().run(assignment, machine)
    # rank 0 runs 3x slow for the entire plausible duration
    plan = FaultPlan(stragglers=(
        StraggleWindow(rank=0, start=0.0, end=1e6, factor=3.0),
    ))
    res, _ = _conserved(engine_cls(), assignment, machine,
                        FaultInjector(plan, 0))
    assert res.wall_time > clean.wall_time * 1.5


@pytest.mark.parametrize("engine_cls", [BSPEngine, AsyncEngine])
def test_macro_deterministic_under_faults(engine_cls):
    assignment, machine = _macro_setup()
    plan = FaultPlan(drop_prob=0.05, exchange_drop_prob=0.5,
                     stragglers=(StraggleWindow(0, 0.0, 10.0, 2.0),))
    r1 = engine_cls().run(assignment, machine, faults=FaultInjector(plan, 11))
    r2 = engine_cls().run(assignment, machine, faults=FaultInjector(plan, 11))
    assert r1.wall_time == r2.wall_time
    assert r1.details.get("fault_kinds") == r2.details.get("fault_kinds")


def test_macro_bsp_exchange_retries_inflate_exchange_total():
    assignment, machine = _macro_setup()
    clean = BSPEngine().run(assignment, machine)
    # probability ~1 of at least one retry on the (single) round
    plan = FaultPlan(exchange_drop_prob=0.95)
    res, metrics = _conserved(BSPEngine(), assignment, machine,
                              FaultInjector(plan, 1))
    assert res.details["exchange_retries"] >= 1
    assert (res.details["exchange_time_total"]
            > clean.details["exchange_time_total"])
    assert metrics.rows()  # exchange_retries counter rolled up


def test_macro_link_window_inflates_exchange():
    assignment, machine = _macro_setup()
    clean = BSPEngine().run(assignment, machine)
    plan = FaultPlan(links=(
        LinkWindow(start=0.0, end=1e6, bandwidth_factor=0.25),
    ))
    res, _ = _conserved(BSPEngine(), assignment, machine,
                        FaultInjector(plan, 0))
    assert (res.details["exchange_time_total"]
            > 3.0 * clean.details["exchange_time_total"])


def test_run_alignment_threads_fault_plan():
    wl = get_workload("ecoli30x")
    plan = parse_fault_spec("straggle=2@r0:0:1e6")
    clean = run_alignment(wl, nodes=2, approach="bsp", cores_per_node=4)
    faulty = run_alignment(wl, nodes=2, approach="bsp", cores_per_node=4,
                           fault_plan=plan, fault_seed=3)
    assert faulty.wall_time > clean.wall_time
    assert faulty.details["fault_plan"] == plan.describe()


def test_compare_engines_same_plan_both_engines():
    wl = get_workload("ecoli30x")
    plan = parse_fault_spec("drop=0.02,xchg_drop=0.5")
    results = compare_engines(wl, nodes=2, cores_per_node=4,
                              fault_plan=plan, fault_seed=1)
    assert set(results) == {"bsp", "async", "hybrid"}
    for res in results.values():
        assert res.details["fault_plan"] == plan.describe()


# -- micro engines under faults --------------------------------------------

def _micro_setup():
    return get_workload("micro"), cori_knl(2, app_cores_per_node=4)


@pytest.mark.parametrize("engine_cls", [MicroBSPEngine, MicroAsyncEngine])
def test_micro_kill_raises_typed(engine_cls):
    wl, machine = _micro_setup()
    plan = FaultPlan(kills=(RankKill(rank=1, time=1e-4),))
    with pytest.raises(RankFailureError, match="rank 1"):
        engine_cls().run(wl, machine, faults=FaultInjector(plan, 0))


@pytest.mark.parametrize("engine_cls", [MicroBSPEngine, MicroAsyncEngine])
def test_micro_message_faults_same_task_counts(engine_cls):
    """Any absorbed fault plan must leave the computed work identical:
    every task runs exactly once (idempotent delivery, retried rounds)."""
    wl, machine = _micro_setup()
    m_clean = MetricsRegistry(machine.total_ranks)
    m_fault = MetricsRegistry(machine.total_ranks)
    engine_cls().run(wl, machine, metrics=m_clean)
    plan = FaultPlan(drop_prob=0.1, delay_prob=0.05, delay_seconds=1e-3,
                     dup_prob=0.1, exchange_drop_prob=0.4,
                     rpc_max_retries=10)
    faults = FaultInjector(plan, 5)
    tracer = Tracer()
    res = engine_cls().run(wl, machine, metrics=m_fault, tracer=tracer,
                           faults=faults)
    clean_tasks = [r for r in m_clean.rows() if r[0] == "tasks"]
    fault_tasks = [r for r in m_fault.rows() if r[0] == "tasks"]
    assert clean_tasks == fault_tasks
    # and the faulty run still conserves time
    assert check_breakdown(res.breakdown).ok
    assert check_trace(tracer, res.wall_time, machine.total_ranks).ok


@pytest.mark.parametrize("engine_cls", [MicroBSPEngine, MicroAsyncEngine])
def test_micro_deterministic_under_faults(engine_cls):
    wl, machine = _micro_setup()
    plan = FaultPlan(drop_prob=0.1, dup_prob=0.1, exchange_drop_prob=0.3,
                     rpc_max_retries=10)
    r1 = engine_cls().run(wl, machine, faults=FaultInjector(plan, 21))
    r2 = engine_cls().run(wl, machine, faults=FaultInjector(plan, 21))
    assert r1.wall_time == r2.wall_time
    assert r1.details == r2.details


def test_micro_async_fault_details_surface_retry_stats():
    wl, machine = _micro_setup()
    plan = FaultPlan(drop_prob=0.2, rpc_max_retries=10)
    res = MicroAsyncEngine().run(wl, machine,
                                 faults=FaultInjector(plan, 2))
    assert res.details["rpc_retries"] > 0
    assert res.details["rpc_timeouts"] >= res.details["rpc_retries"]
    assert res.details["faults_injected"] > 0


def test_micro_straggler_slows_the_straggling_rank():
    wl, machine = _micro_setup()
    clean = MicroBSPEngine().run(wl, machine)
    # straggle the busiest rank so the dilation lands on the critical path
    busiest = int(np.argmax(clean.breakdown.compute_align))
    plan = FaultPlan(stragglers=(
        StraggleWindow(rank=busiest, start=0.0, end=1e6, factor=4.0),
    ))
    res = MicroBSPEngine().run(wl, machine,
                               faults=FaultInjector(plan, 0))
    assert res.breakdown.compute_align[busiest] == pytest.approx(
        4.0 * clean.breakdown.compute_align[busiest])
    assert res.wall_time > clean.wall_time


def test_fault_error_hierarchy():
    assert issubclass(RpcTimeoutError, FaultError)
    assert issubclass(RankFailureError, FaultError)
