"""Tests for the seed-and-extend aligner (the per-task kernel)."""

import numpy as np
import pytest

from repro.align.seedextend import SeedExtendAligner
from repro.errors import AlignmentError
from repro.genome import alphabet
from repro.genome.synth import ErrorModel


def make_overlap(rng, core_len=400, left_a=100, right_b=120, err=0.0):
    """Reads a = [pad_a | core], b = [core | pad_b] (dovetail overlap)."""
    core = alphabet.random_sequence(core_len, rng)
    pad_a = alphabet.random_sequence(left_a, rng)
    pad_b = alphabet.random_sequence(right_b, rng)
    em = ErrorModel(error_rate=err, n_rate=0.0)
    a = np.concatenate([pad_a, em.apply(core, rng)])
    b = np.concatenate([em.apply(core, rng), pad_b])
    return a, b, core


def test_perfect_dovetail_alignment():
    rng = np.random.default_rng(0)
    a, b, core = make_overlap(rng, err=0.0)
    k = 17
    # seed in the middle of the shared core
    seed_core = 200
    pos_a, pos_b = 100 + seed_core, seed_core
    res = SeedExtendAligner(x_drop=15).align(a, b, pos_a, pos_b, k)
    assert res.score == 400  # whole core matches
    assert res.begin_a == 100 and res.end_a == 500
    assert res.begin_b == 0 and res.end_b == 400
    assert res.overlap_class(len(a), len(b), slack=10) == "dovetail"


def test_noisy_overlap_still_extends():
    rng = np.random.default_rng(1)
    a, b, core = make_overlap(rng, core_len=600, err=0.10)
    # place the seed by finding an exact shared 13-mer via candidates
    from repro.genome.sequence import ReadSet
    from repro.kmer.seeds import CandidateGenerator

    reads = ReadSet.from_codes([a, b])
    cands = CandidateGenerator(k=13, bounds=(1, 64)).generate(reads)
    c = next(c for c in cands if (c.read_a, c.read_b) == (0, 1))
    res = SeedExtendAligner(x_drop=20).align_candidate(reads, c)
    # should recover the bulk of the ~600bp overlap despite ~20% divergence
    assert res.aligned_length_a > 300
    assert res.score > 100


def test_reverse_candidate_alignment():
    rng = np.random.default_rng(2)
    a, b, core = make_overlap(rng, err=0.0)
    b_rc = alphabet.reverse_complement(b)
    k = 17
    seed_core = 200
    pos_a = 100 + seed_core
    pos_b_fwd = seed_core  # position on b's forward strand
    pos_b_on_rc_strand = len(b) - (pos_b_fwd + k)
    # candidate stores pos on b's forward strand; reverse=True
    res = SeedExtendAligner(x_drop=15).align(
        a, b_rc, pos_a, pos_b_on_rc_strand, k, reverse=True
    )
    assert res.score == 400
    assert res.reverse


def test_containment_classification():
    rng = np.random.default_rng(3)
    core = alphabet.random_sequence(300, rng)
    a = core  # a is contained in b
    b = np.concatenate(
        [alphabet.random_sequence(80, rng), core, alphabet.random_sequence(90, rng)]
    )
    res = SeedExtendAligner(x_drop=15).align(a, b, 150, 230, 17)
    assert res.overlap_class(len(a), len(b), slack=10) == "contained"


def test_internal_false_positive():
    rng = np.random.default_rng(4)
    # unrelated reads sharing one planted 17-mer in the middle
    seed = alphabet.random_sequence(17, rng)
    a = np.concatenate(
        [alphabet.random_sequence(500, rng), seed, alphabet.random_sequence(500, rng)]
    )
    b = np.concatenate(
        [alphabet.random_sequence(400, rng), seed, alphabet.random_sequence(600, rng)]
    )
    res = SeedExtendAligner(x_drop=10).align(a, b, 500, 400, 17)
    assert res.terminated_early
    assert res.overlap_class(len(a), len(b)) == "internal"
    # score stays near the bare seed score
    assert res.score < 17 + 40


def test_score_includes_seed():
    a = alphabet.encode("ACGTACGTACGTACGTA")
    res = SeedExtendAligner().align(a, a.copy(), 0, 0, 17)
    assert res.score == 17


def test_seed_bounds_validation():
    a = alphabet.encode("ACGTACGT")
    aligner = SeedExtendAligner()
    with pytest.raises(AlignmentError):
        aligner.align(a, a, 5, 0, 17)
    with pytest.raises(AlignmentError):
        aligner.align(a, a, 0, -1, 4)


def test_cells_accounted():
    rng = np.random.default_rng(5)
    a, b, _ = make_overlap(rng, err=0.05)
    res = SeedExtendAligner(x_drop=15).align(a, b, 300, 200, 17)
    assert res.cells > 0
    # roughly band * overlap work, far below full DP
    assert res.cells < 0.2 * len(a) * len(b)
