"""Batched wavefront X-drop: extend many pairs per antidiagonal step.

The scalar kernel (:mod:`repro.align.xdrop`) pays Python/numpy dispatch
overhead per pair per antidiagonal, which dominates wall-clock in the
pure-python reproduction even though the paper's cost model counts only DP
cells (§4.2).  This module amortizes that overhead the way GPU ports of the
kernel do (LOGAN-style batching, PAPERS.md): ``B`` extensions advance in
lockstep behind **one shared antidiagonal counter**, with each step
computing one ``(B_active, window)`` block of cells.

Per pair the kernel keeps the scalar state — live-window bounds, the two
trailing wavefront rows, best score/position, cell and antidiagonal
counters — as rows of padded 2-D arrays.  Pairs terminate independently
(window death, X-drop kill, or exhaustion) and finished pairs are compacted
out of the active set, so a batch mixing early-terminating false positives
with long true overlaps never pays for the dead rows.

Results are **bit-identical** to running :class:`~repro.align.xdrop.
XDropExtender` per pair (same scores, extents, cells, antidiagonal counts,
early-termination flags): the cost model and every paper figure consume
those numbers, so the batch is an execution strategy, not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.align.scoring import DEFAULT_SCORING, ScoringScheme
from repro.align.xdrop import ExtensionResult, _NEG
from repro.errors import AlignmentError

__all__ = ["BatchedXDropExtender"]


def _gather_rows(vals: np.ndarray, vals_lo: np.ndarray, vals_len: np.ndarray,
                 want_lo: np.ndarray, width: int) -> np.ndarray:
    """Per-row diagonal gather: row r gets ``vals[r]`` at indices
    ``[want_lo[r], want_lo[r] + width)``, NEG-filled outside the stored span.

    The 2-D analogue of the scalar kernel's ``_gather``.
    """
    rows = vals.shape[0]
    if vals.shape[1] == 0:
        return np.full((rows, width), _NEG, dtype=np.int64)
    col = want_lo[:, None] + np.arange(width, dtype=np.int64)[None, :] \
        - vals_lo[:, None]
    ok = (col >= 0) & (col < vals_len[:, None])
    np.clip(col, 0, vals.shape[1] - 1, out=col)
    out = np.take_along_axis(vals, col, axis=1)
    out[~ok] = _NEG
    return out


@dataclass(frozen=True)
class BatchedXDropExtender:
    """X-drop extension of a whole batch of pairs, one antidiagonal at a time.

    Same parameters as :class:`~repro.align.xdrop.XDropExtender`; one
    instance serves any number of :meth:`extend_batch` calls.
    """

    x_drop: int = 15
    scoring: ScoringScheme = DEFAULT_SCORING

    def __post_init__(self) -> None:
        if self.x_drop < 0:
            raise AlignmentError("x_drop must be nonnegative")

    def extend_batch(
        self, pairs: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> list[ExtensionResult]:
        """Extend every ``(a, b)`` pair rightward from position 0.

        Inputs follow :meth:`XDropExtender.extend`: suffix code arrays
        beyond the seed (or reversed prefixes for leftward extensions).
        Returns one :class:`ExtensionResult` per pair, in input order.
        """
        results: list[ExtensionResult | None] = [None] * len(pairs)
        seqs_a: list[np.ndarray] = []
        seqs_b: list[np.ndarray] = []
        orig_ids: list[int] = []
        for p, (a, b) in enumerate(pairs):
            a = np.asarray(a, dtype=np.uint8)
            b = np.asarray(b, dtype=np.uint8)
            if a.size == 0 or b.size == 0:
                # As in the scalar kernel: only pure-gap extensions exist
                # and they score negatively, so the empty extension wins.
                results[p] = ExtensionResult(0, 0, 0, 0, 0, False)
            else:
                orig_ids.append(p)
                seqs_a.append(a)
                seqs_b.append(b)
        if not orig_ids:
            return results  # type: ignore[return-value]

        table = self.scoring.substitution_table
        gap = np.int64(self.scoring.gap)
        x = np.int64(self.x_drop)

        k0 = len(orig_ids)
        orig = np.array(orig_ids, dtype=np.int64)
        m = np.array([a.size for a in seqs_a], dtype=np.int64)
        n = np.array([b.size for b in seqs_b], dtype=np.int64)

        # Shifted sequence lookups packed flat: row r's a-codes live at
        # a_off[r] + i with a_flat[a_off[r] + i] == a[max(i - 1, 0)].
        a_flat = np.concatenate([np.concatenate((a[:1], a)) for a in seqs_a])
        b_flat = np.concatenate([np.concatenate((b[:1], b)) for b in seqs_b])
        a_off = np.zeros(k0, dtype=np.int64)
        np.cumsum(m[:-1] + 1, out=a_off[1:])
        b_off = np.zeros(k0, dtype=np.int64)
        np.cumsum(n[:-1] + 1, out=b_off[1:])

        # Per-pair scalar state, vectorized across the active set.
        win_lo = np.zeros(k0, dtype=np.int64)
        win_hi = np.ones(k0, dtype=np.int64)
        best = np.zeros(k0, dtype=np.int64)
        best_i = np.zeros(k0, dtype=np.int64)
        best_j = np.zeros(k0, dtype=np.int64)
        cells = np.zeros(k0, dtype=np.int64)

        # Trailing wavefront rows as padded 2-D blocks + per-row (lo, len).
        prev = np.zeros((k0, 1), dtype=np.int64)       # diagonal d-1
        prev_lo = np.zeros(k0, dtype=np.int64)
        prev_len = np.ones(k0, dtype=np.int64)
        prev2 = np.zeros((k0, 0), dtype=np.int64)      # diagonal d-2
        prev2_lo = np.zeros(k0, dtype=np.int64)
        prev2_len = np.zeros(k0, dtype=np.int64)

        d = 0

        def finish(rows: np.ndarray, early: np.ndarray) -> None:
            """Record results for active rows that terminate at diagonal d."""
            for r in rows:
                results[int(orig[r])] = ExtensionResult(
                    score=int(best[r]),
                    length_a=int(best_i[r]),
                    length_b=int(best_j[r]),
                    cells=int(cells[r]),
                    antidiagonals=d - 1,
                    terminated_early=bool(early[r]),
                )

        while orig.size:
            d += 1
            mn = m + n

            # Termination before computing diagonal d: natural exhaustion
            # (d > m+n, not early) or a dead window (lo > hi, early).
            lo = np.maximum(np.maximum(win_lo, 0), d - n)
            hi = np.minimum(np.minimum(win_hi, d), m)
            exhausted = d > mn
            dead = ~exhausted & (lo > hi)
            fin = exhausted | dead
            if fin.any():
                finish(np.nonzero(fin)[0], dead)
                keep = ~fin
                (orig, m, n, a_off, b_off, win_lo, win_hi, best, best_i,
                 best_j, cells, mn, lo, hi, prev_lo, prev_len, prev2_lo,
                 prev2_len) = (
                    arr[keep] for arr in (
                        orig, m, n, a_off, b_off, win_lo, win_hi, best,
                        best_i, best_j, cells, mn, lo, hi, prev_lo,
                        prev_len, prev2_lo, prev2_len))
                prev = prev[keep]
                prev2 = prev2[keep]
                if not orig.size:
                    break

            count = hi - lo + 1
            width = int(count.max())
            cols = np.arange(width, dtype=np.int64)
            valid = cols[None, :] < count[:, None]
            i_vals = lo[:, None] + cols[None, :]

            # Moves: up (i-1, j) and left (i, j-1) live on diagonal d-1 at
            # indices i-1 and i; diagonal (i-1, j-1) lives on d-2 at i-1.
            up = _gather_rows(prev, prev_lo, prev_len, lo - 1, width)
            up += gap
            left = _gather_rows(prev, prev_lo, prev_len, lo, width)
            left += gap
            diag = _gather_rows(prev2, prev2_lo, prev2_len, lo - 1, width)

            # Padded columns index past the window; clamp them into range
            # (their cells are forced dead below, the codes don't matter).
            ai = a_flat[a_off[:, None] + np.minimum(i_vals, m[:, None])]
            bj = b_flat[b_off[:, None]
                        + np.clip(d - i_vals, 0, n[:, None])]
            diag += table[ai, bj]

            cur = np.maximum(np.maximum(up, left), diag)
            cur[~valid] = _NEG
            cells += count

            cmax = cur.max(axis=1)
            karg = cur.argmax(axis=1)
            improved = cmax > best
            bi = lo + karg
            best = np.where(improved, cmax, best)
            best_i = np.where(improved, bi, best_i)
            best_j = np.where(improved, d - bi, best_j)

            live = cur >= (best - x)[:, None]
            live &= valid
            has_live = live.any(axis=1)
            if not has_live.all():
                # X-drop killed the whole window: early unless the pair was
                # already on its final antidiagonal.
                finish(np.nonzero(~has_live)[0], d < mn)
                keep = has_live
                (orig, m, n, a_off, b_off, best, best_i, best_j, cells,
                 lo, count) = (
                    arr[keep] for arr in (
                        orig, m, n, a_off, b_off, best, best_i, best_j,
                        cells, lo, count))
                live = live[keep]
                cur = cur[keep]
                prev = prev[keep]
                prev_lo, prev_len = prev_lo[keep], prev_len[keep]
                if not orig.size:
                    break

            first = live.argmax(axis=1)
            last = live.shape[1] - 1 - live[:, ::-1].argmax(axis=1)
            win_lo = lo + first
            win_hi = lo + last + 1

            prev2, prev2_lo, prev2_len = prev, prev_lo, prev_len
            prev, prev_lo, prev_len = cur, lo, count

        return results  # type: ignore[return-value]
